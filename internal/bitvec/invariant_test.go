package bitvec

import (
	"errors"
	"testing"

	"repro/internal/bdd"
	"repro/internal/diag"
	"repro/internal/faultpoint"
)

// TestInvariantPanicsAreTyped documents the invariant-only panic contract
// for every guarded site: bad slices, width mismatches and negative shifts
// panic with InvariantError so recovery boundaries can attribute them.
func TestInvariantPanicsAreTyped(t *testing.T) {
	m := bdd.New()
	a := Const(m, 5, 4)
	b := Const(m, 1, 8)
	cases := map[string]func(){
		"slice-hi":       func() { Slice(a, 4, 0) },
		"slice-lo":       func() { Slice(a, 2, -1) },
		"slice-reversed": func() { Slice(a, 1, 2) },
		"width-add":      func() { Add(m, a, b) },
		"width-and":      func() { And(m, a, b) },
		"shl-negative":   func() { ShlConst(m, a, -1) },
		"shr-negative":   func() { ShrConst(m, a, -1) },
		"ashr-negative":  func() { AshrConst(m, a, -2) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				v := recover()
				if _, ok := v.(InvariantError); !ok {
					t.Errorf("%s: panic value %T %v, want InvariantError", name, v, v)
				}
			}()
			fn()
			t.Errorf("%s: no panic", name)
		}()
	}
}

// TestRecoveryBoundary shows the diag.Capture boundary converting a width
// mismatch into an inspectable error instead of a crash — the guarantee the
// ISE phase relies on when symbolic evaluation goes wrong.
func TestRecoveryBoundary(t *testing.T) {
	m := bdd.New()
	err := diag.Capture(func() error {
		Add(m, Const(m, 1, 4), Const(m, 1, 8))
		return nil
	})
	var pe *diag.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := pe.Value.(InvariantError); !ok {
		t.Errorf("recovered %T, want InvariantError", pe.Value)
	}
}

// TestSliceFaultpoint verifies the bitvec.slice injection site.
func TestSliceFaultpoint(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Arm("bitvec.slice", faultpoint.Action{Kind: faultpoint.KindError})
	m := bdd.New()
	err := diag.Capture(func() error {
		Slice(Const(m, 3, 4), 3, 0)
		return nil
	})
	var pe *diag.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := pe.Value.(*faultpoint.Fault); !ok {
		t.Errorf("recovered %T, want *faultpoint.Fault", pe.Value)
	}
}
