// Package bitvec provides word-level symbolic arithmetic over vectors of
// BDDs ("bit-blasting").
//
// During control-signal analysis, RECORD traces module control ports back
// through arbitrary random logic (instruction decoders) to the primary
// control sources — instruction-word bits and mode-register bits.  The
// decoder behavior is an RT-level expression over multi-bit ports, so we
// need to evaluate such expressions symbolically: each wire becomes a
// vector of BDDs, one per bit, and predicates like "selector == 3" become
// single BDDs over instruction bits.  This package implements the required
// vector operators: ripple-carry add/sub, bitwise logic, shifts by constant
// amounts, comparisons, multiplexing, slicing and concatenation.
//
// Vectors are little-endian: index 0 is the least significant bit.
package bitvec

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/faultpoint"
)

// InvariantError is the panic value used for caller-contract violations
// (out-of-range slices, width mismatches, negative shifts).  These panics
// are invariant-only: width agreement is established by the HDL semantic
// checker and netlist elaboration before any symbolic evaluation starts, so
// they signal a pipeline bug, not bad user input.  They are therefore kept
// as panics rather than threaded-through errors; every pipeline phase runs
// under a diag.Capture recovery boundary that converts them into Error
// diagnostics instead of driver crashes (see internal/diag and the boundary
// tests in this package's test file).
type InvariantError string

func (e InvariantError) Error() string { return string(e) }

func invariantf(format string, args ...interface{}) InvariantError {
	return InvariantError(fmt.Sprintf(format, args...))
}

// Vec is a fixed-width symbolic word; element i is bit i (LSB first).
type Vec []*bdd.Node

// Width returns the number of bits in v.
func (v Vec) Width() int { return len(v) }

// Const builds a w-bit vector holding the constant value (truncated to w
// bits, two's-complement wraparound for negative values).
func Const(m *bdd.Manager, value int64, w int) Vec {
	v := make(Vec, w)
	for i := 0; i < w; i++ {
		if value&(1<<uint(i)) != 0 {
			v[i] = m.True()
		} else {
			v[i] = m.False()
		}
	}
	return v
}

// Vars builds a w-bit vector of fresh/declared variables named
// prefix0..prefix{w-1}.
func Vars(m *bdd.Manager, prefix string, w int) Vec {
	v := make(Vec, w)
	for i := 0; i < w; i++ {
		v[i] = m.Var(m.DeclareVar(fmt.Sprintf("%s%d", prefix, i)))
	}
	return v
}

// FromVarRange builds a vector from already-declared consecutive variable
// indices lo..lo+w-1.
func FromVarRange(m *bdd.Manager, lo, w int) Vec {
	v := make(Vec, w)
	for i := 0; i < w; i++ {
		v[i] = m.Var(lo + i)
	}
	return v
}

// ZeroExtend returns v widened to w bits with zero bits (or v itself when
// already at least w bits wide, truncated to w).
func ZeroExtend(m *bdd.Manager, v Vec, w int) Vec {
	r := make(Vec, w)
	for i := 0; i < w; i++ {
		if i < len(v) {
			r[i] = v[i]
		} else {
			r[i] = m.False()
		}
	}
	return r
}

// SignExtend returns v widened (or truncated) to w bits replicating the
// sign bit.
func SignExtend(m *bdd.Manager, v Vec, w int) Vec {
	r := make(Vec, w)
	for i := 0; i < w; i++ {
		switch {
		case i < len(v):
			r[i] = v[i]
		case len(v) == 0:
			r[i] = m.False()
		default:
			r[i] = v[len(v)-1]
		}
	}
	return r
}

// Slice returns bits lo..hi inclusive of v (hi >= lo).
func Slice(v Vec, hi, lo int) Vec {
	if err := faultpoint.Hit("bitvec.slice", ""); err != nil {
		panic(err) // vector ops cannot return errors; the phase boundary recovers.
	}
	if lo < 0 || hi >= len(v) || hi < lo {
		panic(invariantf("bitvec: bad slice [%d:%d] of width %d", hi, lo, len(v)))
	}
	out := make(Vec, hi-lo+1)
	copy(out, v[lo:hi+1])
	return out
}

// Concat returns the concatenation with lo occupying the low bits.
func Concat(lo, hi Vec) Vec {
	out := make(Vec, 0, len(lo)+len(hi))
	out = append(out, lo...)
	out = append(out, hi...)
	return out
}

func sameWidth(a, b Vec) {
	if len(a) != len(b) {
		panic(invariantf("bitvec: width mismatch %d vs %d", len(a), len(b)))
	}
}

// Not returns the bitwise complement.
func Not(m *bdd.Manager, a Vec) Vec {
	r := make(Vec, len(a))
	for i := range a {
		r[i] = m.Not(a[i])
	}
	return r
}

// And returns the bitwise conjunction.
func And(m *bdd.Manager, a, b Vec) Vec {
	sameWidth(a, b)
	r := make(Vec, len(a))
	for i := range a {
		r[i] = m.And(a[i], b[i])
	}
	return r
}

// Or returns the bitwise disjunction.
func Or(m *bdd.Manager, a, b Vec) Vec {
	sameWidth(a, b)
	r := make(Vec, len(a))
	for i := range a {
		r[i] = m.Or(a[i], b[i])
	}
	return r
}

// Xor returns the bitwise exclusive-or.
func Xor(m *bdd.Manager, a, b Vec) Vec {
	sameWidth(a, b)
	r := make(Vec, len(a))
	for i := range a {
		r[i] = m.Xor(a[i], b[i])
	}
	return r
}

// Add returns a+b modulo 2^w (ripple-carry).
func Add(m *bdd.Manager, a, b Vec) Vec {
	sameWidth(a, b)
	r := make(Vec, len(a))
	carry := m.False()
	for i := range a {
		s := m.Xor(m.Xor(a[i], b[i]), carry)
		carry = m.Or(m.And(a[i], b[i]), m.And(carry, m.Xor(a[i], b[i])))
		r[i] = s
	}
	return r
}

// Sub returns a-b modulo 2^w (two's complement: a + ~b + 1).
func Sub(m *bdd.Manager, a, b Vec) Vec {
	sameWidth(a, b)
	r := make(Vec, len(a))
	carry := m.True()
	for i := range a {
		nb := m.Not(b[i])
		s := m.Xor(m.Xor(a[i], nb), carry)
		carry = m.Or(m.And(a[i], nb), m.And(carry, m.Xor(a[i], nb)))
		r[i] = s
	}
	return r
}

// Neg returns the two's-complement negation of a.
func Neg(m *bdd.Manager, a Vec) Vec {
	return Sub(m, Const(m, 0, len(a)), a)
}

// Mul returns a*b modulo 2^w via shift-and-add.  Widths must match; the
// result has the same width.  Intended for small decoder-level words.
func Mul(m *bdd.Manager, a, b Vec) Vec {
	sameWidth(a, b)
	w := len(a)
	acc := Const(m, 0, w)
	for i := 0; i < w; i++ {
		// partial = (a << i) masked by b[i]
		part := make(Vec, w)
		for j := 0; j < w; j++ {
			if j < i {
				part[j] = m.False()
			} else {
				part[j] = m.And(a[j-i], b[i])
			}
		}
		acc = Add(m, acc, part)
	}
	return acc
}

// ShlConst shifts left by constant k, filling with zero bits.
func ShlConst(m *bdd.Manager, a Vec, k int) Vec {
	if k < 0 {
		panic(InvariantError("bitvec: negative shift"))
	}
	r := make(Vec, len(a))
	for i := range r {
		if i < k {
			r[i] = m.False()
		} else {
			r[i] = a[i-k]
		}
	}
	return r
}

// ShrConst shifts right (logical) by constant k.
func ShrConst(m *bdd.Manager, a Vec, k int) Vec {
	if k < 0 {
		panic(InvariantError("bitvec: negative shift"))
	}
	r := make(Vec, len(a))
	for i := range r {
		if i+k < len(a) {
			r[i] = a[i+k]
		} else {
			r[i] = m.False()
		}
	}
	return r
}

// AshrConst shifts right arithmetically by constant k.
func AshrConst(m *bdd.Manager, a Vec, k int) Vec {
	if k < 0 {
		panic(InvariantError("bitvec: negative shift"))
	}
	if len(a) == 0 {
		return a
	}
	sign := a[len(a)-1]
	r := make(Vec, len(a))
	for i := range r {
		if i+k < len(a) {
			r[i] = a[i+k]
		} else {
			r[i] = sign
		}
	}
	return r
}

// Eq returns the single-bit predicate a == b.
func Eq(m *bdd.Manager, a, b Vec) *bdd.Node {
	sameWidth(a, b)
	r := m.True()
	for i := range a {
		r = m.And(r, m.Xnor(a[i], b[i]))
		if r == m.False() {
			break
		}
	}
	return r
}

// EqConst returns the predicate a == value.
func EqConst(m *bdd.Manager, a Vec, value int64) *bdd.Node {
	return Eq(m, a, Const(m, value, len(a)))
}

// Ult returns the unsigned predicate a < b.
func Ult(m *bdd.Manager, a, b Vec) *bdd.Node {
	sameWidth(a, b)
	lt := m.False()
	for i := 0; i < len(a); i++ { // from LSB to MSB, MSB dominates
		bitLt := m.And(m.Not(a[i]), b[i])
		eq := m.Xnor(a[i], b[i])
		lt = m.Or(bitLt, m.And(eq, lt))
	}
	return lt
}

// Slt returns the signed (two's complement) predicate a < b.
func Slt(m *bdd.Manager, a, b Vec) *bdd.Node {
	sameWidth(a, b)
	if len(a) == 0 {
		return m.False()
	}
	n := len(a) - 1
	sa, sb := a[n], b[n]
	// Same sign: unsigned comparison of remaining bits decides together
	// with equal MSBs; simplest correct formulation: flip sign bits and
	// compare unsigned.
	fa := make(Vec, len(a))
	fb := make(Vec, len(b))
	copy(fa, a)
	copy(fb, b)
	fa[n] = m.Not(sa)
	fb[n] = m.Not(sb)
	return Ult(m, fa, fb)
}

// Mux returns sel ? a : b, bitwise.
func Mux(m *bdd.Manager, sel *bdd.Node, a, b Vec) Vec {
	sameWidth(a, b)
	r := make(Vec, len(a))
	for i := range a {
		r[i] = m.Ite(sel, a[i], b[i])
	}
	return r
}

// IsZero returns the predicate a == 0.
func IsZero(m *bdd.Manager, a Vec) *bdd.Node {
	r := m.True()
	for i := range a {
		r = m.And(r, m.Not(a[i]))
	}
	return r
}

// NonZero returns the predicate a != 0 as a single bit.
func NonZero(m *bdd.Manager, a Vec) *bdd.Node {
	return m.Not(IsZero(m, a))
}

// Bool converts a 1-bit-style condition BDD into a width-1 vector.
func Bool(b *bdd.Node) Vec { return Vec{b} }

// Truth returns the low bit of v as a condition, treating any wider vector
// like hardware does when a word drives a 1-bit control port: bit 0 is used.
func Truth(m *bdd.Manager, v Vec) *bdd.Node {
	if len(v) == 0 {
		return m.False()
	}
	return v[0]
}

// IsConst reports whether every bit of v is a constant, returning the value.
func IsConst(m *bdd.Manager, v Vec) (value int64, ok bool) {
	for i, b := range v {
		switch b {
		case m.True():
			if i < 63 {
				value |= 1 << uint(i)
			}
		case m.False():
			// zero bit
		default:
			return 0, false
		}
	}
	return value, true
}

// Eval evaluates v under a variable assignment, returning the word value.
func Eval(m *bdd.Manager, v Vec, assign map[int]bool) int64 {
	var out int64
	for i, b := range v {
		if m.Eval(b, assign) && i < 63 {
			out |= 1 << uint(i)
		}
	}
	return out
}
