package models

// BrancherMDL extends the accumulator machine with the "standard jump
// instructions" of the paper's processor class (table 1): a comparator
// writes a 1-bit flag register, and a next-PC multiplexer selects between
// PC+1, an unconditional jump target and a flag-conditional jump target.
// Instruction-set extraction turns the multiplexer into PC-destination RT
// templates — the conditional ones carrying residual dynamic guards on
// the flag — which internal/cflow uses to compile if/while programs.
//
// Instruction word (32 bits):
//
//	[31:29] aluop   [28] bsel (0 memory, 1 immediate)
//	[27] acc.ld     [26] mem write
//	[25] flag.ld    [24:23] compare op (0 <, 1 ==, 2 !=, 3 <=)
//	[22:21] jump op (0 PC+1, 1 jump, 2 jump-if-flag; 3 also PC+1)
//	[15:0] immediate; [7:0] address / jump target
//
// The all-zero jump-op selection is PC+1, so data words that leave those
// bits unconstrained sequence normally (see asm.NewEncoder background).
const BrancherMDL = `
PROCESSOR brancher;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: a & b;
         3: a | b;
         4: a ^ b;
         5: b;
         6: a * b;
         7: a >>> 1;
       END;
END;

MODULE Cmp (IN a: WORD; IN b: WORD; IN cc: 2; OUT y: 1);
BEGIN
  y <- CASE cc OF
         0: a < b;
         1: a == b;
         2: a != b;
         3: a <= b;
       END;
END;

MODULE BMux (IN m: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: imm; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Reg1 (IN d: 1; IN ld: 1; OUT q: 1);
VAR r: 1;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

MODULE PcMux (IN inc: 8; IN tgt: 8; IN f: 1; IN jop: 2; OUT y: 8);
BEGIN
  y <- CASE jop OF
         0: inc;
         1: tgt;
         2: CASE f OF 1: tgt; ELSE: inc; END;
         3: inc;
       END;
END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  cmp  : Cmp;
  bmux : BMux;
  acc  : Reg;
  flag : Reg1;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;
  pmux : PcMux;

CONNECT
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[31:29];
  bmux.m   <- ram.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[28];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[27];

  cmp.a    <- acc.q;
  cmp.b    <- bmux.y;
  cmp.cc   <- imem.q[24:23];
  flag.d   <- cmp.y;
  flag.ld  <- imem.q[25];

  ram.a    <- imem.q[7:0];
  ram.d    <- acc.q;
  ram.w    <- imem.q[26];

  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pmux.inc <- pinc.y;
  pmux.tgt <- imem.q[7:0];
  pmux.f   <- flag.q;
  pmux.jop <- imem.q[22:21];
  pc.d     <- pmux.y;
END.
`
