// Package models contains the MDL processor descriptions used in the
// paper's evaluation (table 3 and figure 2): two synthetic examples (demo,
// ref), two educational machines (manocpu after Mano's basic computer,
// tanenbaum after Tanenbaum's Mac-1), an industrial audio ASIP
// (bass_boost, after the Philips in-house DSP of Strik et al.), and a
// Texas Instruments TMS320C25-style fixed-point DSP.
//
// The models are written from the architecture descriptions in the cited
// sources; absolute template counts differ from the paper's (which modeled
// the machines in MIMOLA at a different granularity), but the relative
// ordering — ref ≫ demo > tms320c25 > tanenbaum ≈ manocpu > bass_boost —
// is preserved, which is what the reproduction tracks.
package models

// Entry describes one bundled processor model.
type Entry struct {
	Name        string
	MDL         string
	Description string
}

// All returns the bundled models in the paper's table 3 order.
func All() []Entry {
	return []Entry{
		{"demo", DemoMDL, "synthetic dual-issue example with a shifter-chained ALU"},
		{"ref", RefMDL, "large synthetic reference machine (two datapath slices)"},
		{"manocpu", ManoCPUMDL, "Mano's basic computer (bus-based accumulator machine)"},
		{"tanenbaum", TanenbaumMDL, "Tanenbaum's Mac-1 (accumulator + stack-relative addressing)"},
		{"bass_boost", BassBoostMDL, "industrial audio ASIP (biquad filter engine)"},
		{"tms320c25", TMS320C25MDL, "TI TMS320C25-style fixed-point DSP with dual memories"},
	}
}

// Get returns the MDL text of a model by name.  Beyond the table-3 set,
// "brancher" resolves to the control-flow demonstration machine.
func Get(name string) (string, bool) {
	if name == "brancher" {
		return BrancherMDL, true
	}
	for _, e := range All() {
		if e.Name == name {
			return e.MDL, true
		}
	}
	return "", false
}
