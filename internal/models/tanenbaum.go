package models

// TanenbaumMDL models the Mac-1 example machine of Tanenbaum's "Structured
// Computer Organization" (3rd ed., 1990): an accumulator architecture with
// a stack pointer and both direct and stack-relative (local) addressing —
// LODD/STOD/ADDD/SUBD, LODL/STOL/ADDL/SUBL, LOCO, INSP/DESP.  The
// single-cycle RT model uses a horizontal 32-bit word in place of the
// original 16-bit encoded format.
//
// Instruction word (32 bits):
//
//	[31] address mode (0 direct, 1 SP-relative)
//	[30:29] ALU op (0 AC+B, 1 AC-B, 2 pass B)
//	[28] B source (0 memory, 1 immediate)
//	[27] AC.ld   [26] mem write
//	[25] SP.ld   [24:23] SP op (0 SP+off, 1 SP-off, 2 load offset)
//	[15:0] immediate; [7:0] address / offset
const TanenbaumMDL = `
PROCESSOR tanenbaum;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 2; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: b;
         3: a;
       END;
END;

MODULE BMux (IN m: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: imm; END;
END;

MODULE AddrUnit (IN d: 8; IN sp: 8; IN s: 1; OUT y: 8);
BEGIN
  y <- CASE s OF 0: d; 1: sp + d; END;
END;

MODULE SpAlu (IN sp: 8; IN off: 8; IN s: 2; OUT y: 8);
BEGIN
  y <- CASE s OF 0: sp + off; 1: sp - off; 2: off; ELSE: sp; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Reg8 (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE IRom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

MODULE Inc8 (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  au   : AddrUnit;
  spalu: SpAlu;
  ac   : Reg;
  sp   : Reg8;
  mem  : Ram;
  imem : IRom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc8;

CONNECT
  au.d     <- imem.q[7:0];
  au.sp    <- sp.q;
  au.s     <- imem.q[31];
  mem.a    <- au.y;
  mem.d    <- ac.q;
  mem.w    <- imem.q[26];

  bmux.m   <- mem.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[28];
  alu.a    <- ac.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[30:29];
  ac.d     <- alu.y;
  ac.ld    <- imem.q[27];

  spalu.sp <- sp.q;
  spalu.off<- imem.q[7:0];
  spalu.s  <- imem.q[24:23];
  sp.d     <- spalu.y;
  sp.ld    <- imem.q[25];

  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`
