package models

// DemoMDL is the paper's mid-size synthetic example: a dual-accumulator
// datapath whose ALU B operand passes through a shifter, so every ALU
// operation exists in plain and add-with-shift chained form — the chained
// operations the paper highlights as optimally exploited by tree parsing.
// Operand routing is deliberately rich (two accumulators, an index
// register, direct and register-indirect memory addressing, immediates),
// which multiplies the extracted RT template count into the several
// hundreds.
//
// Instruction word (32 bits):
//
//	[31:29] aluop   [28] asel (A operand: acc0/acc1)
//	[27:26] bsel    (0 x, 1 immediate, 2 memory)
//	[25] shift      (B shifted left by 1 when set)
//	[24] acc0.ld    [23] acc1.ld   [22] x.ld
//	[21] mem write  [20] amode     (0 direct, 1 x-indirect)
//	[15:0] immediate; [7:0] address
const DemoMDL = `
PROCESSOR demo;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: a & b;
         3: a | b;
         4: a ^ b;
         5: b;
         6: a * b;
         7: -b;
       END;
END;

MODULE AMux (IN r0: WORD; IN r1: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: r0; 1: r1; END;
END;

MODULE BMux (IN x: WORD; IN imm: WORD; IN m: WORD; IN s: 2; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: x; 1: imm; 2: m; ELSE: x; END;
END;

MODULE Shifter (IN a: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: a; 1: a << 1; END;
END;

MODULE AddrMux (IN d: 8; IN xr: 8; IN s: 1; OUT y: 8);
BEGIN
  y <- CASE s OF 0: d; 1: xr; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE IRom (IN a: 9; OUT q: 32);
VAR m: 32 [512];
BEGIN q <- m[a]; END;

MODULE PcReg (IN d: 9; OUT q: 9);
VAR r: 9;
BEGIN q <- r; r <- d; END;

MODULE Inc9 (IN a: 9; OUT y: 9);
BEGIN y <- a + 1; END;

PARTS
  alu  : Alu;
  amux : AMux;
  bmux : BMux;
  shft : Shifter;
  admx : AddrMux;
  acc0 : Reg;
  acc1 : Reg;
  x    : Reg;
  mem  : Ram;
  imem : IRom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc9;

CONNECT
  amux.r0  <- acc0.q;
  amux.r1  <- acc1.q;
  amux.s   <- imem.q[28];
  bmux.x   <- x.q;
  bmux.imm <- imem.q[15:0];
  bmux.m   <- mem.q;
  bmux.s   <- imem.q[27:26];
  shft.a   <- bmux.y;
  shft.s   <- imem.q[25];
  alu.a    <- amux.y;
  alu.b    <- shft.y;
  alu.op   <- imem.q[31:29];
  acc0.d   <- alu.y;
  acc0.ld  <- imem.q[24];
  acc1.d   <- alu.y;
  acc1.ld  <- imem.q[23];
  x.d      <- alu.y;
  x.ld     <- imem.q[22];
  admx.d   <- imem.q[7:0];
  admx.xr  <- x.q[7:0];
  admx.s   <- imem.q[20];
  mem.a    <- admx.y;
  mem.d    <- amux.y;
  mem.w    <- imem.q[21];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`
