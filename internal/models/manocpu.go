package models

// ManoCPUMDL models the basic computer of Mano's "Computer System
// Architecture" (3rd ed., 1993) at the register-transfer level: a common
// 16-bit bus connecting the accumulator AC, the data register DR, the
// temporary register TR, the address register AR and the data memory,
// with AC fed through an ALU implementing the memory-reference operations
// (AND, ADD, LDA) and the register-reference operations (CLA, CMA, INC,
// circular shifts approximated by logical shifts).  Memory is addressed
// register-indirectly through AR, as in the original machine.  The
// single-cycle RT model uses a horizontal 32-bit microinstruction word in
// place of Mano's two-phase fetch/execute sequencing.
//
// Instruction word (32 bits):
//
//	[31:29] bus source (0 AC, 1 DR, 2 TR, 3 memory, 4 immediate)
//	[28:26] ALU operation
//	[25] AC.ld  [24] DR.ld  [23] TR.ld  [22] AR.ld  [21] mem write
//	[15:0] immediate
const ManoCPUMDL = `
PROCESSOR manocpu;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN d: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a & d;     -- AND
         1: a + d;     -- ADD
         2: d;         -- LDA (pass bus)
         3: 0;         -- CLA
         4: ~a;        -- CMA
         5: a + 1;     -- INC
         6: a >> 1;    -- CIR (approximated)
         7: a << 1;    -- CIL (approximated)
       END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Reg8 (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE IRom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

MODULE Inc8 (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

BUS dbus : WORD;

PARTS
  alu  : Alu;
  ac   : Reg;
  dr   : Reg;
  tr   : Reg;
  ar   : Reg8;
  mem  : Ram;
  imem : IRom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc8;

CONNECT
  dbus    <- ac.q           WHEN imem.q[31:29] == 0;
  dbus    <- dr.q           WHEN imem.q[31:29] == 1;
  dbus    <- tr.q           WHEN imem.q[31:29] == 2;
  dbus    <- mem.q          WHEN imem.q[31:29] == 3;
  dbus    <- imem.q[15:0]   WHEN imem.q[31:29] == 4;

  alu.a   <- ac.q;
  alu.d   <- dbus;
  alu.op  <- imem.q[28:26];
  ac.d    <- alu.y;
  ac.ld   <- imem.q[25];

  dr.d    <- dbus;
  dr.ld   <- imem.q[24];
  tr.d    <- dbus;
  tr.ld   <- imem.q[23];
  ar.d    <- dbus[7:0];
  ar.ld   <- imem.q[22];

  mem.a   <- ar.q;
  mem.d   <- dbus;
  mem.w   <- imem.q[21];

  imem.a  <- pc.q;
  pinc.a  <- pc.q;
  pc.d    <- pinc.y;
END.
`
