package models

// TMS320C25MDL models a Texas Instruments TMS320C25-style fixed-point DSP
// (TI TMS320C2x User's Guide, 1990), scaled to the reproduction framework:
//
//   - accumulator architecture: ALU result always lands in ACC; ALU operand
//     A is ACC, operand B comes from data memory, the P register, a 16-bit
//     immediate or the coefficient ROM (ADD/SUB/AND/OR/XOR/LAC/LACK/APAC/
//     SPAC/PAC/SFL/SFR, plus TBLR-style ROM reads);
//   - multiplier with T/P registers: P := T * {dmem, coefficient ROM,
//     immediate} (MPY/MPYK), T loaded from either memory (LT);
//   - Harvard-style dual memories: 256x16 data RAM plus a 256x16
//     coefficient ROM with its own address field, enabling single-word
//     multiply-accumulate pipelines (the MAC/MACD behavior);
//   - two auxiliary registers AR0/AR1 with post-increment and immediate
//     load (LARK), serving register-indirect addressing;
//   - horizontal-encoded 40-bit instruction word, so compaction can pack
//     independent RTs (e.g. ACC += P  ||  P := T*dmem[AR0]  ||  AR0++).
//
// Instruction word layout:
//
//	[39:37] aluop   [36:35] bsel    [34] acc.ld
//	[33] t.ld       [32] tsel
//	[31] p.ld       [30:29] psel
//	[28] dmem write [27:26] amode   (0 direct, 1 AR0, 2 AR1)
//	[25] ar0.ld     [24] ar0sel     (0 post-increment, 1 immediate)
//	[23] ar1.ld     [22] ar1sel
//	[15:0] immediate; [15:8] coefficient-ROM address; [7:0] data address
const TMS320C25MDL = `
PROCESSOR tms320c25;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: a & b;
         3: a | b;
         4: a ^ b;
         5: b;          -- LAC / PAC / LACK: pass operand B
         6: a << 1;     -- SFL
         7: a >>> 1;    -- SFR (arithmetic)
       END;
END;

MODULE BMux (IN m: WORD; IN p: WORD; IN imm: WORD; IN c: WORD; IN s: 2; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: p; 2: imm; 3: c; END;
END;

MODULE TMux (IN m: WORD; IN c: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: c; END;
END;

MODULE PMux (IN m: WORD; IN c: WORD; IN imm: WORD; IN s: 2; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: c; 2: imm; ELSE: m; END;
END;

MODULE Mult (IN a: WORD; IN b: WORD; OUT y: WORD);
BEGIN
  y <- a * b;
END;

MODULE AMux (IN d: 8; IN a0: 8; IN a1: 8; IN s: 2; OUT y: 8);
BEGIN
  y <- CASE s OF 0: d; 1: a0; 2: a1; ELSE: d; END;
END;

MODULE ArMux (IN inc: 8; IN imm: 8; IN s: 1; OUT y: 8);
BEGIN
  y <- CASE s OF 0: inc; 1: imm; END;
END;

MODULE Inc8 (IN a: 8; OUT y: 8);
BEGIN
  y <- a + 1;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Reg8 (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE CRom (IN a: 8; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; END;

MODULE IRom (IN a: 10; OUT q: 40);
VAR m: 40 [1024];
BEGIN q <- m[a]; END;

MODULE PcReg (IN d: 10; OUT q: 10);
VAR r: 10;
BEGIN q <- r; r <- d; END;

MODULE Inc10 (IN a: 10; OUT y: 10);
BEGIN y <- a + 1; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  tmux : TMux;
  pmux : PMux;
  mult : Mult;
  amux : AMux;
  armx0: ArMux;
  armx1: ArMux;
  inc0 : Inc8;
  inc1 : Inc8;
  acc  : Reg;
  t    : Reg;
  p    : Reg;
  ar0  : Reg8;
  ar1  : Reg8;
  dmem : Ram;
  crom : CRom;
  imem : IRom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc10;

CONNECT
  -- accumulator path
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[39:37];
  bmux.m   <- dmem.q;
  bmux.p   <- p.q;
  bmux.imm <- imem.q[15:0];
  bmux.c   <- crom.q;
  bmux.s   <- imem.q[36:35];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[34];

  -- multiplier path
  t.d      <- tmux.y;
  t.ld     <- imem.q[33];
  tmux.m   <- dmem.q;
  tmux.c   <- crom.q;
  tmux.s   <- imem.q[32];
  mult.a   <- t.q;
  mult.b   <- pmux.y;
  pmux.m   <- dmem.q;
  pmux.c   <- crom.q;
  pmux.imm <- imem.q[15:0];
  pmux.s   <- imem.q[30:29];
  p.d      <- mult.y;
  p.ld     <- imem.q[31];

  -- data memory and addressing
  dmem.d   <- acc.q;
  dmem.w   <- imem.q[28];
  dmem.a   <- amux.y;
  amux.d   <- imem.q[7:0];
  amux.a0  <- ar0.q;
  amux.a1  <- ar1.q;
  amux.s   <- imem.q[27:26];
  crom.a   <- imem.q[15:8];

  -- auxiliary registers
  ar0.d    <- armx0.y;
  ar0.ld   <- imem.q[25];
  armx0.inc<- inc0.y;
  armx0.imm<- imem.q[7:0];
  armx0.s  <- imem.q[24];
  inc0.a   <- ar0.q;
  ar1.d    <- armx1.y;
  ar1.ld   <- imem.q[23];
  armx1.inc<- inc1.y;
  armx1.imm<- imem.q[7:0];
  armx1.s  <- imem.q[22];
  inc1.a   <- ar1.q;

  -- program sequencing
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`
