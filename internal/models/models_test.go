package models

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dspstone"
)

// retarget builds a compiler for a bundled model.
func retarget(t *testing.T, name string) *core.Target {
	t.Helper()
	mdl, ok := Get(name)
	if !ok {
		t.Fatalf("model %s missing", name)
	}
	tg, err := core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	if err != nil {
		t.Fatalf("retarget %s: %v", name, err)
	}
	return tg
}

func TestAllModelsRetarget(t *testing.T) {
	counts := make(map[string]int)
	for _, e := range All() {
		tg := retarget(t, e.Name)
		if tg.Stats.Templates == 0 {
			t.Errorf("%s: no templates", e.Name)
		}
		counts[e.Name] = tg.Stats.Templates
		t.Logf("%-10s extracted=%4d extended=%4d grammar=%+v",
			e.Name, tg.Stats.Extracted, tg.Stats.Templates, tg.Stats.GrammarSz)
	}
	// The paper's relative ordering (table 3):
	// ref >> demo > tms320c25 > {tanenbaum, manocpu} > bass_boost.
	if !(counts["ref"] > counts["demo"]) {
		t.Errorf("ref (%d) should exceed demo (%d)", counts["ref"], counts["demo"])
	}
	if !(counts["demo"] > counts["tms320c25"]) {
		t.Errorf("demo (%d) should exceed tms320c25 (%d)", counts["demo"], counts["tms320c25"])
	}
	if !(counts["tms320c25"] > counts["tanenbaum"]) {
		t.Errorf("tms320c25 (%d) should exceed tanenbaum (%d)", counts["tms320c25"], counts["tanenbaum"])
	}
	if !(counts["tanenbaum"] > counts["bass_boost"]) {
		t.Errorf("tanenbaum (%d) should exceed bass_boost (%d)", counts["tanenbaum"], counts["bass_boost"])
	}
	if !(counts["manocpu"] > counts["bass_boost"]) {
		t.Errorf("manocpu (%d) should exceed bass_boost (%d)", counts["manocpu"], counts["bass_boost"])
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Error("unknown model found")
	}
	if len(All()) != 6 {
		t.Errorf("expected 6 models, got %d", len(All()))
	}
}

// checkProgram compiles and verifies src on model name against the oracle.
func checkProgram(t *testing.T, name, src string) *core.CompileResult {
	t.Helper()
	tg := retarget(t, name)
	res, err := tg.CompileSourceContext(context.Background(), src, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if err := tg.CheckAgainstOracle(res); err != nil {
		t.Fatalf("%s: oracle: %v\n%s", name, err, tg.Listing(res))
	}
	return res
}

const smokeProgram = `
int a = 7;
int b = 9;
int s;
int d;
s = a + b;
d = s - 3;
`

func TestSmokeProgramOnEveryModel(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			checkProgram(t, e.Name, smokeProgram)
		})
	}
}

func TestC25MultiplyAccumulate(t *testing.T) {
	res := checkProgram(t, "tms320c25", `
int a[4] = {1, 2, 3, 4};
int b[4] = {5, 6, 7, 8};
int s;
void main() {
  s = 0;
  for (i = 0; i < 4; i++) {
    s = s + a[i] * b[i];
  }
}
`)
	// MACs must route through T and P.
	usesT, usesP := false, false
	for _, in := range res.Seq.Instrs {
		switch in.Template.Dest {
		case "t.r":
			usesT = true
		case "p.r":
			usesP = true
		}
	}
	if !usesT || !usesP {
		t.Errorf("MAC should use T (%v) and P (%v) registers:\n%s", usesT, usesP, res.Seq)
	}
}

func TestC25DualMemoryBinding(t *testing.T) {
	res := checkProgram(t, "tms320c25", `
int h[3] = {2, 4, 6};
int x[3] = {1, 1, 1};
int y;
void main() {
  y = h[0]*x[0] + h[1]*x[1] + h[2]*x[2];
}
`)
	if res.Binding.ROM == nil {
		t.Fatal("tms320c25 should expose its coefficient ROM")
	}
	p, _ := res.Binding.AddrOf("h")
	if p.Storage != res.Binding.ROM.Memory {
		t.Errorf("first constant array should bind to the ROM, got %s", p.Storage)
	}
	px, _ := res.Binding.AddrOf("x")
	if px.Storage != res.Binding.Primary.Memory {
		t.Errorf("second constant array should bind to primary memory, got %s", px.Storage)
	}
}

func TestDemoChainedShiftOps(t *testing.T) {
	// 2*v is covered by the chained add-with-shift or the shifter path
	// rather than an explicit multiply sequence.
	res := checkProgram(t, "demo", `
int v = 21;
int w;
w = v + 2 * v;
`)
	if res.SeqLen() > 4 {
		t.Errorf("chained shift ops should keep this short, got %d RTs:\n%s",
			res.SeqLen(), res.Seq)
	}
}

func TestManoIndirectAddressing(t *testing.T) {
	// manocpu stores only through AR: the generated code must set AR up.
	res := checkProgram(t, "manocpu", `
int v = 5;
int w;
w = v + 1;
`)
	arWritten := false
	for _, in := range res.Seq.Instrs {
		if in.Template.Dest == "ar.r" {
			arWritten = true
		}
	}
	if !arWritten {
		t.Errorf("manocpu code must load AR for indirect access:\n%s", res.Seq)
	}
}

func TestTanenbaumLocalAddressing(t *testing.T) {
	checkProgram(t, "tanenbaum", `
int a = 3;
int b = 4;
int c;
c = a + b;
c = c - 2;
`)
}

func TestBassBoostBiquadStep(t *testing.T) {
	// The bass_boost ASIP computes sums of products with ROM coefficients.
	checkProgram(t, "bass_boost", `
int c[2] = {3, 5};
int x[2] = {10, 20};
int y;
y = x[0]*c[0] + x[1]*c[1];
`)
}

func TestCompactionOnC25(t *testing.T) {
	tg := retarget(t, "tms320c25")
	src := `
int h[4] = {1, 2, 3, 4};
int x[4] = {5, 6, 7, 8};
int s;
void main() {
  s = 0;
  for (i = 0; i < 4; i++) {
    s = s + h[i] * x[i];
  }
}
`
	packed, err := tg.CompileSourceContext(context.Background(), src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(packed); err != nil {
		t.Fatalf("packed: %v", err)
	}
	plain, err := tg.CompileSourceContext(context.Background(), src, core.CompileOptions{NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.CheckAgainstOracle(plain); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if packed.CodeLen() >= plain.CodeLen() {
		t.Errorf("compaction should shorten the MAC loop: %d vs %d words",
			packed.CodeLen(), plain.CodeLen())
	}
	t.Logf("c25 MAC kernel: %d RTs, %d words packed, %d words unpacked",
		packed.SeqLen(), packed.CodeLen(), plain.CodeLen())
}

// TestKernelsAcrossModels compiles representative DSPStone kernels on the
// synthetic machines too — the generality claim behind table 3: one
// compiler, many architectures, same source.
func TestKernelsAcrossModels(t *testing.T) {
	kernels := []string{"real_update", "dot_product", "fir"}
	for _, model := range []string{"demo", "ref"} {
		tg := retarget(t, model)
		for _, kname := range kernels {
			k, ok := dspstone.Get(kname)
			if !ok {
				t.Fatalf("kernel %s missing", kname)
			}
			res, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
			if err != nil {
				t.Errorf("%s on %s: compile: %v", kname, model, err)
				continue
			}
			if err := tg.CheckAgainstOracle(res); err != nil {
				t.Errorf("%s on %s: oracle: %v", kname, model, err)
				continue
			}
			t.Logf("%s on %-5s: %d RTs, %d words", kname, model, res.SeqLen(), res.CodeLen())
		}
	}
}
