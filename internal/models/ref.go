package models

// RefMDL is the paper's large synthetic reference machine: the demo
// datapath widened to four accumulators, two index registers and two data
// memories (each with direct and register-indirect addressing), so the
// multiplicative operand routing pushes the extracted RT template count
// into the thousands.  It is the stress test for instruction-set
// extraction and grammar construction times.
//
// Instruction word (40 bits):
//
//	[39:37] aluop   [36:35] asel (acc0..acc3)
//	[34:32] bsel    (0 x0, 1 x1, 2 imm, 3 mem0, 4 mem1)
//	[31] shift
//	[30] acc0.ld [29] acc1.ld [28] acc2.ld [27] acc3.ld
//	[26] x0.ld   [25] x1.ld
//	[24] mem0 write  [23] mem1 write
//	[22] mem0 amode  [21] mem1 amode   (0 direct, 1 indexed)
//	[15:0] immediate; [7:0] address
const RefMDL = `
PROCESSOR ref;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: a - b;
         2: a & b;
         3: a | b;
         4: a ^ b;
         5: b;
         6: a * b;
         7: -b;
       END;
END;

MODULE AMux4 (IN r0: WORD; IN r1: WORD; IN r2: WORD; IN r3: WORD; IN s: 2; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: r0; 1: r1; 2: r2; 3: r3; END;
END;

MODULE BMux5 (IN x0: WORD; IN x1: WORD; IN imm: WORD; IN m0: WORD; IN m1: WORD; IN s: 3; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: x0; 1: x1; 2: imm; 3: m0; 4: m1; ELSE: x0; END;
END;

MODULE Shifter (IN a: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: a; 1: a << 1; END;
END;

MODULE AddrMux (IN d: 8; IN xr: 8; IN s: 1; OUT y: 8);
BEGIN
  y <- CASE s OF 0: d; 1: xr; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE IRom (IN a: 9; OUT q: 40);
VAR m: 40 [512];
BEGIN q <- m[a]; END;

MODULE PcReg (IN d: 9; OUT q: 9);
VAR r: 9;
BEGIN q <- r; r <- d; END;

MODULE Inc9 (IN a: 9; OUT y: 9);
BEGIN y <- a + 1; END;

PARTS
  alu  : Alu;
  amux : AMux4;
  bmux : BMux5;
  shft : Shifter;
  admx0: AddrMux;
  admx1: AddrMux;
  acc0 : Reg;
  acc1 : Reg;
  acc2 : Reg;
  acc3 : Reg;
  x0   : Reg;
  x1   : Reg;
  mem0 : Ram;
  mem1 : Ram;
  imem : IRom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc9;

CONNECT
  amux.r0  <- acc0.q;
  amux.r1  <- acc1.q;
  amux.r2  <- acc2.q;
  amux.r3  <- acc3.q;
  amux.s   <- imem.q[36:35];
  bmux.x0  <- x0.q;
  bmux.x1  <- x1.q;
  bmux.imm <- imem.q[15:0];
  bmux.m0  <- mem0.q;
  bmux.m1  <- mem1.q;
  bmux.s   <- imem.q[34:32];
  shft.a   <- bmux.y;
  shft.s   <- imem.q[31];
  alu.a    <- amux.y;
  alu.b    <- shft.y;
  alu.op   <- imem.q[39:37];
  acc0.d   <- alu.y;
  acc0.ld  <- imem.q[30];
  acc1.d   <- alu.y;
  acc1.ld  <- imem.q[29];
  acc2.d   <- alu.y;
  acc2.ld  <- imem.q[28];
  acc3.d   <- alu.y;
  acc3.ld  <- imem.q[27];
  x0.d     <- alu.y;
  x0.ld    <- imem.q[26];
  x1.d     <- alu.y;
  x1.ld    <- imem.q[25];
  admx0.d  <- imem.q[7:0];
  admx0.xr <- x0.q[7:0];
  admx0.s  <- imem.q[22];
  mem0.a   <- admx0.y;
  mem0.d   <- amux.y;
  mem0.w   <- imem.q[24];
  admx1.d  <- imem.q[7:0];
  admx1.xr <- x1.q[7:0];
  admx1.s  <- imem.q[21];
  mem1.a   <- admx1.y;
  mem1.d   <- amux.y;
  mem1.w   <- imem.q[23];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`
