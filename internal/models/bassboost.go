package models

// BassBoostMDL models a minimal industrial audio ASIP in the style of the
// Philips in-house bass-boost DSP core (Strik et al., ED&TC 1995): a
// dedicated biquad-filter engine with a single-cycle multiply-accumulate
// datapath, a small sample/state RAM and a coefficient ROM.  It is the
// smallest machine of the evaluation set.
//
// Instruction word (24 bits):
//
//	[23:22] aluop (0 acc+b, 1 b, 2 acc-b, 3 acc)
//	[21:20] bsel (0 MAC, 1 RAM, 2 immediate)
//	[19] acc.ld   [18] ram write
//	[15:0] immediate; [6:4] coefficient-ROM address; [3:0] RAM address
const BassBoostMDL = `
PROCESSOR bass_boost;
CONST WORD = 16;

MODULE MacAlu (IN a: WORD; IN b: WORD; IN op: 2; OUT y: WORD);
BEGIN
  y <- CASE op OF
         0: a + b;
         1: b;
         2: a - b;
         3: a;
       END;
END;

MODULE Mult (IN x: WORD; IN c: WORD; OUT y: WORD);
BEGIN
  y <- x * c;
END;

MODULE BMux (IN mac: WORD; IN m: WORD; IN imm: WORD; IN s: 2; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: mac; 1: m; 2: imm; ELSE: mac; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 4; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [16];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE CRom (IN a: 3; OUT q: WORD);
VAR m: WORD [8];
BEGIN q <- m[a]; END;

MODULE IRom (IN a: 8; OUT q: 24);
VAR m: 24 [256];
BEGIN q <- m[a]; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

MODULE Inc8 (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

PARTS
  alu  : MacAlu;
  mult : Mult;
  bmux : BMux;
  acc  : Reg;
  ram  : Ram;
  crom : CRom;
  imem : IRom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc8;

CONNECT
  mult.x  <- ram.q;
  mult.c  <- crom.q;
  bmux.mac<- mult.y;
  bmux.m  <- ram.q;
  bmux.imm<- imem.q[15:0];
  bmux.s  <- imem.q[21:20];
  alu.a   <- acc.q;
  alu.b   <- bmux.y;
  alu.op  <- imem.q[23:22];
  acc.d   <- alu.y;
  acc.ld  <- imem.q[19];
  ram.a   <- imem.q[3:0];
  ram.d   <- acc.q;
  ram.w   <- imem.q[18];
  crom.a  <- imem.q[6:4];
  imem.a  <- pc.q;
  pinc.a  <- pc.q;
  pc.d    <- pinc.y;
END.
`
