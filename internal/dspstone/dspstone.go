// Package dspstone contains the ten DSPStone benchmark kernels of the
// paper's figure 2 (Zivojnovic et al., ICSPAT 1994) written in RecC, plus
// hand-written reference code sizes for the TMS320C25 model.
//
// The kernels are the fixed-point DSPStone basic blocks: real_update,
// complex_multiply, complex_update, n_real_updates, n_complex_updates,
// dot_product, fir, biquad_one_section, biquad_N_sections and convolution.
// Counted loops carry compile-time constant bounds and are unrolled by the
// frontend, matching the paper's evaluation of basic program blocks.
//
// Hand counts are instruction-word counts of carefully hand-scheduled
// assembly for *this repository's* tms320c25 model (one shared data-memory
// port, a separate coefficient-ROM port, single-cycle MAC pipeline through
// T and P); the derivations are documented next to each formula.  They
// play the role of the paper's "hand-written code = 100%" bars.
package dspstone

import "fmt"

// Kernel is one DSPStone benchmark.
type Kernel struct {
	Name string
	// N is the size parameter (taps, updates, sections); 0 when the kernel
	// is inherently scalar.
	N int
	// Source is the RecC program text.
	Source string
	// HandWords is the hand-written reference code size in instruction
	// words on the tms320c25 model.
	HandWords int
}

// Suite returns the ten kernels with the paper's default sizes.
func Suite() []Kernel {
	const n = 8 // array-kernel size parameter (DSPStone uses 8/16)
	return []Kernel{
		RealUpdate(),
		ComplexMultiply(),
		ComplexUpdate(),
		NRealUpdates(n),
		NComplexUpdates(n),
		DotProduct(n),
		Fir(n),
		BiquadOne(),
		BiquadN(4),
		Convolution(n),
	}
}

// Get returns a kernel by name with the default size, or false.
func Get(name string) (Kernel, bool) {
	for _, k := range Suite() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// RealUpdate: d = c + a*b.
//
// Hand schedule: LT a; MPY b; LAC c; APAC; SACL d.  Every instruction
// except APAC needs the shared data-memory port, and APAC cannot merge
// with LAC (one ALU operation per word), so 5 words.
func RealUpdate() Kernel {
	return Kernel{
		Name:      "real_update",
		HandWords: 5,
		Source: `
int a = 7;
int b = 9;
int c = 11;
int d;
d = c + a * b;
`,
	}
}

// ComplexMultiply: cr+j ci = (ar+j ai)(br+j bi).
//
// Hand schedule: LT ar; MPY br; {PAC || LT ai}; MPY bi; ...
//
//	1 LT ar   2 MPY br   3 PAC||LT ai   4 MPY bi   5 SPAC   6 SACL cr
//	7 MPY br  8 PAC||LT ar 9 MPY bi    10 APAC    11 SACL ci  = 11 words.
func ComplexMultiply() Kernel {
	return Kernel{
		Name:      "complex_multiply",
		HandWords: 11,
		Source: `
int ar = 3; int ai = -4;
int br = 5; int bi = 6;
int cr; int ci;
cr = ar*br - ai*bi;
ci = ar*bi + ai*br;
`,
	}
}

// ComplexUpdate: d = c + a*b over complex numbers.
//
// Hand schedule is complex_multiply with LAC cr/ci replacing the PACs
// (each pairs with an LT like the PAC did) plus nothing else:
//
//	1 LT ar  2 MPY br  3 LAC cr  4 APAC||LT ai  5 MPY bi  6 SPAC
//	7 SACL dr  8 MPY br  9 LAC ci  10 APAC||LT ar  11 MPY bi  12 APAC
//	13 SACL di = 13 words.
func ComplexUpdate() Kernel {
	return Kernel{
		Name:      "complex_update",
		HandWords: 13,
		Source: `
int ar = 3; int ai = -4;
int br = 5; int bi = 6;
int cr = 100; int ci = -50;
int dr; int di;
dr = cr + ar*br - ai*bi;
di = ci + ar*bi + ai*br;
`,
	}
}

// NRealUpdates: d[i] = c[i] + a[i]*b[i] for i < n.
//
// The constant arrays alternate between memories (a[], c[] in the
// coefficient ROM; b[] in data memory), so the steady state is a two-word
// software pipeline per element —
//
//	{APAC || MPY b[i] || LT a[i+1]}    (ALU, multiplier and T port)
//	{SACL d[i-1] || LAC c[i] (ROM)}    (data-memory port and ROM port)
//
// plus a three-word prologue/epilogue: 2n + 3 words.
func NRealUpdates(n int) Kernel {
	return Kernel{
		Name:      "n_real_updates",
		N:         n,
		HandWords: 2*n + 3,
		Source: fmt.Sprintf(`
int a[%d] = {1, 2, 3, 4, 5, 6, 7, 8};
int b[%d] = {8, 7, 6, 5, 4, 3, 2, 1};
int c[%d] = {10, 20, 30, 40, 50, 60, 70, 80};
int d[%d];
void main() {
  for (i = 0; i < %d; i++) {
    d[i] = c[i] + a[i] * b[i];
  }
}
`, n, n, n, n, n),
	}
}

// NComplexUpdates: complex d[i] = c[i] + a[i]*b[i] for i < n, arrays
// interleaved re/im.
//
// Per element: four multiplies, two accumulation chains and two stores.
// With the re/im constant arrays split across the ROM and data memory the
// MAC pipeline sustains one multiply per word and the stores pair with
// ROM-side loads: 6 words per element steady state plus a three-word
// prologue/epilogue, i.e. 6n + 3.
func NComplexUpdates(n int) Kernel {
	return Kernel{
		Name:      "n_complex_updates",
		N:         n,
		HandWords: 6*n + 3,
		Source: fmt.Sprintf(`
int a[%d] = {1, -2, 3, -4, 5, -6, 7, -8, 1, -2, 3, -4, 5, -6, 7, -8};
int b[%d] = {2, 2, 2, 2, 3, 3, 3, 3, 2, 2, 2, 2, 3, 3, 3, 3};
int c[%d] = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
int d[%d];
void main() {
  for (i = 0; i < %d; i++) {
    d[2*i]   = c[2*i]   + a[2*i]*b[2*i]   - a[2*i+1]*b[2*i+1];
    d[2*i+1] = c[2*i+1] + a[2*i]*b[2*i+1] + a[2*i+1]*b[2*i];
  }
}
`, 2*n, 2*n, 2*n, 2*n, n),
	}
}

// DotProduct: s = sum a[i]*b[i].
//
// With a[] in the coefficient ROM the MAC pipelines to one word per tap:
//
//	{ZAC || LT a0}, {MPY b0 || LT a1}, n-1 x {APAC || MPY || LT}, {APAC},
//	{SACL s}
//
// = n + 3 words.
func DotProduct(n int) Kernel {
	return Kernel{
		Name:      "dot_product",
		N:         n,
		HandWords: n + 3,
		Source: fmt.Sprintf(`
int a[%d] = {1, 2, 3, 4, 5, 6, 7, 8};
int b[%d] = {8, 7, 6, 5, 4, 3, 2, 1};
int s;
void main() {
  s = 0;
  for (i = 0; i < %d; i++) {
    s = s + a[i] * b[i];
  }
}
`, n, n, n),
	}
}

// Fir: n-tap FIR with delay-line shift (one output sample).
//
// The MAC part equals dot_product (n+3 with h[] in the ROM); the delay
// line shift x[i] = x[i-1] costs LAC+SACL per element over the shared
// memory port: 2(n-1) more words.
func Fir(n int) Kernel {
	return Kernel{
		Name:      "fir",
		N:         n,
		HandWords: (n + 3) + 2*(n-1),
		Source: fmt.Sprintf(`
int h[%d] = {1, 2, 3, 4, 4, 3, 2, 1};
int x[%d] = {5, 4, 3, 2, 1, 0, -1, -2};
int x0 = 9;
int y;
void main() {
  y = 0;
  for (i = 0; i < %d; i++) {
    y = y + h[i] * x[i];
  }
  for (k = 0; k < %d; k++) {
    x[%d - k] = x[%d - k];
  }
  x[0] = x0;
}
`, n, n, n, n-1, n-1, n-2),
	}
}

// BiquadOne: one biquad section (direct form II).
//
//	w  = x - a1*w1 - a2*w2
//	y  = b0*w + b1*w1 + b2*w2
//	w2 = w1; w1 = w
//
// Hand schedule: 7 (w) + 8 (y) + 4 (delay updates) = 19 words, minus one
// word because the final SACL w1 pairs with the preceding accumulator
// traffic: 18 words (coefficients are scalars in data memory).
func BiquadOne() Kernel {
	return Kernel{
		Name:      "biquad_one",
		HandWords: 18,
		Source: `
int x = 64;
int w1 = 3; int w2 = -2;
int a1 = 2; int a2 = 1;
int b0 = 4; int b1 = 3; int b2 = 2;
int w; int y;
w = x - a1*w1 - a2*w2;
y = b0*w + b1*w1 + b2*w2;
w2 = w1;
w1 = w;
`,
	}
}

// BiquadN: n cascaded biquad sections; the output of one section feeds
// the next.  The per-section coefficient arrays alternate between the
// ROM and data memory, so every section's multiplies pipeline against the
// neighbouring section's loads/stores; a careful hand schedule reaches
// 15 words per section plus one epilogue word: 15n + 1.
func BiquadN(n int) Kernel {
	arr := func(name string, base int) string {
		s := fmt.Sprintf("int %s[%d] = {", name, n)
		for i := 0; i < n; i++ {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%d", (base+i)%5-1)
		}
		return s + "};\n"
	}
	src := "int x = 64;\n" +
		arr("w1", 3) + arr("w2", 1) +
		arr("a1", 2) + arr("a2", 4) +
		arr("b0", 5) + arr("b1", 3) + arr("b2", 2) +
		fmt.Sprintf(`int w; int y;
void main() {
  y = x;
  for (s = 0; s < %d; s++) {
    w = y - a1[s]*w1[s] - a2[s]*w2[s];
    y = b0[s]*w + b1[s]*w1[s] + b2[s]*w2[s];
    w2[s] = w1[s];
    w1[s] = w;
  }
}
`, n)
	return Kernel{
		Name:      "biquad_N",
		N:         n,
		HandWords: 15*n + 1,
		Source:    src,
	}
}

// Convolution: s = sum x[i]*h[n-1-i]; identical pipeline to dot_product.
func Convolution(n int) Kernel {
	return Kernel{
		Name:      "convolution",
		N:         n,
		HandWords: n + 3,
		Source: fmt.Sprintf(`
int x[%d] = {1, 1, 2, 2, 3, 3, 4, 4};
int h[%d] = {1, -1, 1, -1, 1, -1, 1, -1};
int s;
void main() {
  s = 0;
  for (i = 0; i < %d; i++) {
    s = s + x[i] * h[%d - i];
  }
}
`, n, n, n, n-1),
	}
}
