package dspstone

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/naive"
)

var (
	c25Once sync.Once
	c25     *core.Target
	c25Err  error
)

func c25Target(t *testing.T) *core.Target {
	t.Helper()
	c25Once.Do(func() {
		mdl, _ := models.Get("tms320c25")
		c25, c25Err = core.RetargetContext(context.Background(), mdl, core.RetargetOptions{})
	})
	if c25Err != nil {
		t.Fatalf("retarget: %v", c25Err)
	}
	return c25
}

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d kernels, want 10", len(suite))
	}
	names := map[string]bool{}
	for _, k := range suite {
		if k.Source == "" || k.HandWords <= 0 {
			t.Errorf("%s: incomplete kernel", k.Name)
		}
		if names[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		names[k.Name] = true
	}
	if _, ok := Get("fir"); !ok {
		t.Error("Get(fir) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}

// TestKernelsCompileAndVerify is the core figure-2 integrity check: every
// kernel compiles for the TMS320C25 model, runs on the netlist simulator,
// and matches the IR oracle — for both the RECORD pipeline and the naive
// baseline.
func TestKernelsCompileAndVerify(t *testing.T) {
	tg := c25Target(t)
	for _, k := range Suite() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			rec, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
			if err != nil {
				t.Fatalf("record compile: %v", err)
			}
			if err := tg.CheckAgainstOracle(rec); err != nil {
				t.Fatalf("record oracle: %v", err)
			}
			nv, err := naive.CompileSource(tg, k.Source)
			if err != nil {
				t.Fatalf("naive compile: %v", err)
			}
			if err := tg.CheckAgainstOracle(nv); err != nil {
				t.Fatalf("naive oracle: %v", err)
			}
			recPct := 100 * rec.CodeLen() / k.HandWords
			nvPct := 100 * nv.CodeLen() / k.HandWords
			t.Logf("%-18s hand=%3d  record=%3d (%d%%)  naive=%3d (%d%%)",
				k.Name, k.HandWords, rec.CodeLen(), recPct, nv.CodeLen(), nvPct)
			// Figure 2 shape: RECORD never loses to the naive baseline.
			if rec.CodeLen() > nv.CodeLen() {
				t.Errorf("record (%d) worse than naive (%d)", rec.CodeLen(), nv.CodeLen())
			}
			// And stays within a sane factor of hand-written code.
			if rec.CodeLen() > 3*k.HandWords {
				t.Errorf("record %d words vs hand %d: more than 3x overhead",
					rec.CodeLen(), k.HandWords)
			}
		})
	}
}

func TestNaiveIsGenuinelyWorseSomewhere(t *testing.T) {
	tg := c25Target(t)
	worse := 0
	for _, k := range Suite() {
		rec, err := tg.CompileSourceContext(context.Background(), k.Source, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		nv, err := naive.CompileSource(tg, k.Source)
		if err != nil {
			t.Fatal(err)
		}
		if nv.CodeLen() > rec.CodeLen() {
			worse++
		}
	}
	if worse < 5 {
		t.Errorf("naive baseline beaten on only %d/10 kernels; figure 2 shape lost", worse)
	}
}
