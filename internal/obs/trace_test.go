package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock steps a fixed amount per call, so traces built with it contain
// no wall-clock values at all.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// TestChromeTraceGolden pins the exported Chrome trace byte-for-byte:
// stable span ordering, monotonic timestamps derived purely from the
// injected clock, args keys sorted by encoding/json.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(time.Millisecond)))
	scope := NewScope(nil, tr)

	root, rscope := scope.Start("retarget", KV("model", "demo"))
	ise, iscope := rscope.Start("ise")
	dest, _ := iscope.Start("ise.dest", KV("dest", "alu.acc"))
	dest.SetAttr("templates", 4)
	dest.End()
	ise.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "traceEvents": [
    {
      "name": "retarget",
      "ph": "X",
      "ts": 1000,
      "dur": 5000,
      "pid": 1,
      "tid": 1,
      "args": {
        "model": "demo"
      }
    },
    {
      "name": "ise",
      "ph": "X",
      "ts": 2000,
      "dur": 3000,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "ise.dest",
      "ph": "X",
      "ts": 3000,
      "dur": 1000,
      "pid": 1,
      "tid": 1,
      "args": {
        "dest": "alu.acc",
        "templates": 4
      }
    }
  ],
  "displayTimeUnit": "ms"
}
`
	if b.String() != want {
		t.Errorf("chrome trace mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestTraceMonotonicOrdering starts roots on separate lanes and checks the
// export preserves start order with monotonic timestamps.
func TestTraceMonotonicOrdering(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(time.Microsecond)))
	a := tr.Root("a")
	b := tr.Root("b")
	b.End()
	a.End()

	infos := tr.Snapshot()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("snapshot order wrong: %+v", infos)
	}
	if infos[0].Tid == infos[1].Tid {
		t.Errorf("independent roots share a lane: %+v", infos)
	}
	if infos[0].Start > infos[1].Start {
		t.Errorf("timestamps not monotonic: %v then %v", infos[0].Start, infos[1].Start)
	}
	for _, si := range infos {
		if !si.Ended || si.Dur < 0 {
			t.Errorf("span %s not properly ended: %+v", si.Name, si)
		}
	}
}

// TestTraceUnendedSpansSkipped keeps half-open spans out of the export so
// partial traces stay valid JSON with only complete events.
func TestTraceUnendedSpansSkipped(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(time.Millisecond)))
	done := tr.Root("done")
	done.End()
	tr.Root("open") // never ended
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"open"`) {
		t.Errorf("unended span exported:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `"done"`) {
		t.Errorf("ended span missing:\n%s", b.String())
	}
}

// TestTraceSpanCap bounds the buffer; overflow spans are counted, not
// recorded, and never crash.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(time.Microsecond)), WithMaxSpans(2))
	for i := 0; i < 5; i++ {
		tr.Root("s").End()
	}
	if got := len(tr.Snapshot()); got != 2 {
		t.Errorf("recorded %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
}

// TestScopeRegistryOnly checks a scope without a tracer still carries the
// registry through Start.
func TestScopeRegistryOnly(t *testing.T) {
	reg := NewRegistry()
	scope := NewScope(reg, nil)
	sp, child := scope.Start("phase")
	if sp != nil {
		t.Errorf("tracerless scope produced a span")
	}
	if child.Registry() != reg {
		t.Errorf("registry lost through Start")
	}
}
