package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// instrument kinds, for TYPE lines and registration conflict checks.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefaultDurationBuckets are the histogram bucket upper bounds (seconds)
// used for pipeline phase latencies: the paper-scale models retarget in
// milliseconds to minutes, so the range spans 100µs..60s.
var DefaultDurationBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60,
}

// Registry holds every instrument of one process (or one test).  Lookup
// and registration take a lock; the instruments themselves are lock-free.
// All methods are safe for concurrent use and nil-safe (a nil *Registry
// returns nil instruments, which discard).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named instrument with its labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string  // label names, fixed at registration
	buckets []float64 // histogram upper bounds (strictly increasing)

	mu       sync.RWMutex
	children map[string]child // serialized label values -> instrument
}

type child interface{}

// register returns the family for name, creating it on first use and
// panicking on a conflicting re-registration — instrument identity is a
// program invariant, not an input.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as %s%v (was %s%v)", name, k, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: %s re-registered with labels %v (was %v)", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

// labelKey serializes label values into the child-map key.  Values are
// escaped so distinct tuples never collide.
func labelKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(v)
	}
	return b.String()
}

// get returns the child for values, creating it with mk on first use.
func (f *family) get(values []string, mk func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	return c
}

// del drops the child for values (used for ephemeral gauge series like
// per-target in-flight compiles; absent children are a no-op).
func (f *family) del(values []string) {
	f.mu.Lock()
	delete(f.children, labelKey(values))
	f.mu.Unlock()
}

// ----- counters ---------------------------------------------------------

// Counter is a monotonically increasing count.  Nil-safe; Add of a
// negative delta panics.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (>= 0).
func (c *Counter) Add(delta int) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(uint64(delta))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the unlabeled counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() child { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the counter family named name with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child counter for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() child { return &Counter{} }).(*Counter)
}

// ----- gauges -----------------------------------------------------------

// Gauge is a value that can go up and down.  Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores x.
func (g *Gauge) Set(x int64) {
	if g == nil {
		return
	}
	g.v.Store(x)
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge returns the unlabeled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() child { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the gauge family named name with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() child { return &Gauge{} }).(*Gauge)
}

// Delete drops the child series for the label values, removing it from
// exposition (for ephemeral series that would otherwise linger at zero).
func (v *GaugeVec) Delete(values ...string) {
	if v == nil {
		return
	}
	v.f.del(values)
}

// ----- histograms -------------------------------------------------------

// Histogram is a fixed-bucket distribution; Observe is three atomic adds.
// Nil-safe.
type Histogram struct {
	bounds []float64       // upper bounds; the +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Histogram returns the unlabeled histogram named name.  buckets are the
// upper bounds in increasing order; nil means DefaultDurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.get(nil, func() child { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family named name with the given
// buckets (nil = DefaultDurationBuckets) and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values, func() child { return newHistogram(v.f.buckets) }).(*Histogram)
}

// ----- exposition -------------------------------------------------------

// WritePrometheus renders every instrument in the Prometheus text format
// (version 0.0.4).  Families are sorted by name and children by label
// values, so successive scrapes of an unchanged registry are
// byte-identical — the property the recordd golden tests and CI format
// check rely on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, c := range children {
		values := strings.Split(keys[i], "\x00")
		if keys[i] == "" {
			values = nil
		}
		switch inst := c.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), inst.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), inst.Value())
		case *Histogram:
			cum := uint64(0)
			for bi, bound := range inst.bounds {
				cum += inst.counts[bi].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", formatFloat(bound)), cum)
			}
			cum += inst.counts[len(inst.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(inst.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), inst.Count())
		}
	}
}

// labelString renders {k="v",...}, appending the extra pair (the
// histogram le label) when extraKey is non-empty.  No labels renders as
// the empty string.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		// Render integral values without an exponent so counters read
		// naturally; Prometheus accepts either.
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q already escapes quotes and backslashes; strip the quotes it adds.
	q := strconv.Quote(s)
	return q[1 : len(q)-1]
}
