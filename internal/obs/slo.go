package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SLO defaults.  Burn thresholds follow the SRE-workbook multi-window
// pattern: a page needs the fast AND slow windows burning at >=14.4x the
// error budget (1h/30d exhaustion pace scaled to our short windows); a
// warning needs both at >=6x.
const (
	DefaultSLOAvailability = 0.999
	DefaultSLOFastWindow   = 5 * time.Minute
	DefaultSLOSlowWindow   = time.Hour
	DefaultSLOFastBurn     = 14.4
	DefaultSLOSlowBurn     = 6.0
)

// SLOConfig declares the objectives an SLOTracker monitors.
type SLOConfig struct {
	// Targets maps a route class to its latency objective: an event is
	// "good" iff it succeeded and finished within the target.
	Targets map[string]time.Duration
	// Availability is the fraction of events that must be good
	// (e.g. 0.999); the error budget is 1-Availability.
	Availability float64
	// FastWindow / SlowWindow are the two burn-rate windows.
	FastWindow, SlowWindow time.Duration
	// FastBurn / SlowBurn are the page / warn burn-rate thresholds.
	FastBurn, SlowBurn float64
	// Now injects the clock for tests.
	Now func() time.Time
}

// sloBucket accumulates one second of events; the ring index recycles,
// so a bucket is valid only while its sec stamp matches.
type sloBucket struct {
	sec  int64
	good uint64
	bad  uint64
}

// sloClass is one route class's bucket ring plus its exported gauges.
type sloClass struct {
	target  time.Duration
	buckets []sloBucket // ring over SlowWindow seconds, indexed sec%len
}

// SLOStatus is one route class's burn-rate snapshot as reported in
// /healthz and Health.
type SLOStatus struct {
	Target   string  `json:"target"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Page     bool    `json:"page"`
	Warn     bool    `json:"warn"`
}

// SLOTracker measures per-route-class latency/availability objectives
// with multi-window burn-rate alerting.  Observe is cheap (one bucket
// update under a short lock); burn rates are computed on demand by
// Refresh/Health so scrape cost stays off the request path.  All methods
// are nil-safe.
type SLOTracker struct {
	mu      sync.Mutex
	cfg     SLOConfig
	classes map[string]*sloClass

	events *CounterVec // <prefix>_events_total{route,result}
	burn   *GaugeVec   // <prefix>_burn_ppm{route,window}
	alert  *GaugeVec   // <prefix>_alert{route,severity}
}

// NewSLOTracker builds a tracker for cfg's route classes, registering
// its instruments under prefix (e.g. "record_recordd_slo").  Zero config
// fields take the Default* values.  A nil registry or empty target set
// returns nil, which discards.
func NewSLOTracker(reg *Registry, prefix string, cfg SLOConfig) *SLOTracker {
	if reg == nil || len(cfg.Targets) == 0 {
		return nil
	}
	if cfg.Availability <= 0 || cfg.Availability >= 1 {
		cfg.Availability = DefaultSLOAvailability
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultSLOFastWindow
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSLOSlowWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = DefaultSLOFastBurn
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = DefaultSLOSlowBurn
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &SLOTracker{
		cfg:     cfg,
		classes: make(map[string]*sloClass, len(cfg.Targets)),
		events: reg.CounterVec(prefix+"_events_total",
			"SLO events by route class and good/bad result.", "route", "result"),
		burn: reg.GaugeVec(prefix+"_burn_ppm",
			"Error-budget burn rate in parts per million (1e6 = burning exactly at budget).",
			"route", "window"),
		alert: reg.GaugeVec(prefix+"_alert",
			"Multi-window burn alert state (1 = firing).", "route", "severity"),
	}
	secs := int(cfg.SlowWindow / time.Second)
	if secs < 1 {
		secs = 1
	}
	for route, target := range cfg.Targets {
		t.classes[route] = &sloClass{target: target, buckets: make([]sloBucket, secs)}
		// Pre-touch the label sets so exposition shows every class from
		// the first scrape.
		t.events.With(route, "good")
		t.events.With(route, "bad")
		t.burn.With(route, "fast")
		t.burn.With(route, "slow")
		t.alert.With(route, "page")
		t.alert.With(route, "warn")
	}
	return t
}

// Observe records one request against its route class's objective.  An
// event is good iff ok and within the class latency target.  Unknown
// routes are dropped.
func (t *SLOTracker) Observe(route string, latency time.Duration, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	c := t.classes[route]
	if c == nil {
		t.mu.Unlock()
		return
	}
	sec := t.cfg.Now().Unix()
	b := &c.buckets[int(sec%int64(len(c.buckets)))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	good := ok && latency <= c.target
	if good {
		b.good++
	} else {
		b.bad++
	}
	t.mu.Unlock()
	if good {
		t.events.With(route, "good").Inc()
	} else {
		t.events.With(route, "bad").Inc()
	}
}

// window sums a class's buckets over the trailing d and returns the
// burn rate: badFraction / errorBudget.  Zero traffic burns nothing.
// Call with t.mu held.
func (t *SLOTracker) windowBurn(c *sloClass, now int64, d time.Duration) float64 {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > int64(len(c.buckets)) {
		secs = int64(len(c.buckets))
	}
	var good, bad uint64
	for s := now - secs + 1; s <= now; s++ {
		b := &c.buckets[int(((s%int64(len(c.buckets)))+int64(len(c.buckets)))%int64(len(c.buckets)))]
		if b.sec == s {
			good += b.good
			bad += b.bad
		}
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - t.cfg.Availability
	return (float64(bad) / float64(total)) / budget
}

// Refresh recomputes burn-rate gauges and alert states for every class.
// recordd calls it from /metrics and /healthz so the gauges are current
// at each scrape without any background goroutine.
func (t *SLOTracker) Refresh() {
	if t == nil {
		return
	}
	t.Health()
}

// Health returns the per-class burn snapshot (and, as a side effect,
// refreshes the exported gauges).  A page fires when both windows burn
// at >= FastBurn; a warning when both burn at >= SlowBurn.
func (t *SLOTracker) Health() map[string]SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	now := t.cfg.Now().Unix()
	type cb struct {
		route      string
		fast, slow float64
		target     time.Duration
	}
	snaps := make([]cb, 0, len(t.classes))
	for route, c := range t.classes {
		snaps = append(snaps, cb{
			route:  route,
			fast:   t.windowBurn(c, now, t.cfg.FastWindow),
			slow:   t.windowBurn(c, now, t.cfg.SlowWindow),
			target: c.target,
		})
	}
	t.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].route < snaps[j].route })

	out := make(map[string]SLOStatus, len(snaps))
	for _, s := range snaps {
		page := s.fast >= t.cfg.FastBurn && s.slow >= t.cfg.FastBurn
		warn := s.fast >= t.cfg.SlowBurn && s.slow >= t.cfg.SlowBurn
		t.burn.With(s.route, "fast").Set(int64(math.Round(s.fast * 1e6)))
		t.burn.With(s.route, "slow").Set(int64(math.Round(s.slow * 1e6)))
		t.alert.With(s.route, "page").Set(boolGauge(page))
		t.alert.With(s.route, "warn").Set(boolGauge(warn))
		out[s.route] = SLOStatus{
			Target:   s.target.String(),
			FastBurn: s.fast,
			SlowBurn: s.slow,
			Page:     page,
			Warn:     warn,
		}
	}
	return out
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
