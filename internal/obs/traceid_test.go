package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// seqIDs returns a deterministic ID source counting up from 1.
func seqIDs() func() uint64 {
	var n uint64
	return func() uint64 { n++; return n }
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	tr := NewTracer(WithIDSource(seqIDs()))
	sp := tr.Root("root")
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatalf("root span has no identity: %+v", sc)
	}
	h := sc.Header()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed header %q", h)
	}
	got, ok := ParseTraceHeader(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceHeaderRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // unknown version
		"00-0123456789abcdef0123456789abcdeX-0123456789abcdef-01", // bad hex
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span
		strings.Repeat("0", 55),
	}
	for _, v := range bad {
		if _, ok := ParseTraceHeader(v); ok {
			t.Errorf("ParseTraceHeader(%q) accepted garbage", v)
		}
	}
}

func TestRandomIDsAreNonZeroAndDistinct(t *testing.T) {
	tr := NewTracer()
	a, b := tr.Root("a").Context(), tr.Root("b").Context()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("invalid contexts: %+v %+v", a, b)
	}
	if a.Trace == b.Trace || a.Span == b.Span {
		t.Fatalf("distinct roots share identity: %+v %+v", a, b)
	}
}

func TestChildInheritsTraceRemoteStartsLane(t *testing.T) {
	tr := NewTracer(WithIDSource(seqIDs()))
	scope := NewScope(nil, tr)

	root, rscope := scope.Start("root")
	child, _ := rscope.Start("child")
	if child.Context().Trace != root.Context().Trace {
		t.Fatalf("child trace %s != root trace %s", child.Context().Trace, root.Context().Trace)
	}

	// A remote parent (another process's span) keeps the trace but opens
	// a fresh lane, and records the remote span as parent.
	remote := root.Context()
	rsp, _ := scope.WithRemote(remote).Start("server")
	if rsp.Context().Trace != remote.Trace {
		t.Fatalf("remote child trace %s != remote trace %s", rsp.Context().Trace, remote.Trace)
	}
	infos := tr.Snapshot()
	var serverInfo *SpanInfo
	for i := range infos {
		if infos[i].Name == "server" {
			serverInfo = &infos[i]
		}
	}
	if serverInfo == nil {
		t.Fatal("server span not recorded")
	}
	if serverInfo.Parent != remote.Span {
		t.Fatalf("server parent %s, want remote span %s", serverInfo.Parent, remote.Span)
	}
	if serverInfo.Tid == infos[0].Tid {
		t.Fatal("remote-parented span reused the local root's lane")
	}

	// An invalid remote context degrades to a fresh local trace.
	fresh, _ := scope.WithRemote(SpanContext{}).Start("fresh")
	if fresh.Context().Trace == remote.Trace {
		t.Fatal("invalid remote context still inherited the trace")
	}
}

func TestSpanRingOverflowCountsDrops(t *testing.T) {
	reg := NewRegistry()
	dropC := reg.Counter("record_obs_spans_dropped_total",
		"Spans overwritten past the tracer ring bound.")
	tr := NewTracer(WithMaxSpans(3), WithDropCounter(dropC), WithIDSource(seqIDs()))
	for i := 0; i < 8; i++ {
		tr.Root("span").End()
	}
	if got := tr.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d, want 5", got)
	}
	if got := dropC.Value(); got != 5 {
		t.Fatalf("drop counter = %d, want 5", got)
	}
	// The ring keeps the most recent max spans, oldest first.
	infos := tr.Snapshot()
	if len(infos) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(infos))
	}
	if infos[0].Seq != 5 || infos[2].Seq != 7 {
		t.Fatalf("ring kept seqs %d..%d, want 5..7", infos[0].Seq, infos[2].Seq)
	}
}

func TestDumpExportsIdentity(t *testing.T) {
	clock := fakeClock(time.Millisecond)
	tr := NewTracer(WithClock(clock), WithIDSource(seqIDs()))
	scope := NewScope(nil, tr)
	root, rscope := scope.Start("root", KV("node", "n1"))
	child, _ := rscope.Start("child")
	child.End()
	root.End()

	d := tr.Dump("n1")
	if d.Node != "n1" {
		t.Fatalf("node = %q", d.Node)
	}
	if d.BaseUnixNS != tr.Base().UnixNano() {
		t.Fatalf("base = %d, want %d", d.BaseUnixNS, tr.Base().UnixNano())
	}
	if len(d.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(d.Spans))
	}
	r, c := d.Spans[0], d.Spans[1]
	if r.Name != "root" || c.Name != "child" {
		t.Fatalf("span order %q, %q", r.Name, c.Name)
	}
	if r.Trace != c.Trace {
		t.Fatalf("trace split: %s vs %s", r.Trace, c.Trace)
	}
	if c.Parent != r.Span {
		t.Fatalf("child parent %q, want %q", c.Parent, r.Span)
	}
	if r.Parent != "" {
		t.Fatalf("root parent %q, want empty", r.Parent)
	}
	if !r.Ended || !c.Ended {
		t.Fatal("spans not marked ended")
	}
	if r.Attrs["node"] != "n1" {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if c.StartUS <= r.StartUS {
		t.Fatalf("child start %d not after root start %d", c.StartUS, r.StartUS)
	}
}

func TestContextScopeRoundTrip(t *testing.T) {
	tr := NewTracer(WithIDSource(seqIDs()))
	scope := NewScope(nil, tr)
	ctx := ContextWithScope(context.Background(), scope)
	if got := ScopeFromContext(ctx); got != scope {
		t.Fatalf("ScopeFromContext = %p, want %p", got, scope)
	}
	if got := ScopeFromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded scope %p", got)
	}
	if got := ContextWithScope(context.Background(), nil); ScopeFromContext(got) != nil {
		t.Fatal("nil scope attached to context")
	}
}
