package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux returns the profiling mux served by recordd -debug-addr:
// net/http/pprof under /debug/pprof/ (CPU, heap, goroutine, mutex, block
// profiles and the runtime execution tracer at /debug/pprof/trace) plus,
// when reg is non-nil, the metrics registry at /metrics.  Keep the debug
// address off the public listener — profiles expose internals and the
// CPU profile costs real time.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
	}
	return mux
}
