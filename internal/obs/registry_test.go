package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from 8 goroutines (run under
// -race in CI) and asserts exact totals: counter increments must never be
// lost under the lock-free parallel compiler.
func TestRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	reg := NewRegistry()
	ctr := reg.Counter("record_test_ops_total", "ops")
	vec := reg.CounterVec("record_test_labeled_total", "labeled ops", "worker")
	gauge := reg.Gauge("record_test_level", "level")
	hist := reg.Histogram("record_test_seconds", "latency", []float64{0.5, 1})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			worker := string(rune('a' + g))
			for i := 0; i < perG; i++ {
				ctr.Inc()
				// Re-resolve the child every time: the lookup path must be
				// concurrency-safe, not just the increment.
				reg.CounterVec("record_test_labeled_total", "labeled ops", "worker").With(worker).Inc()
				gauge.Inc()
				gauge.Dec()
				hist.Observe(0.75)
			}
		}(g)
	}
	wg.Wait()

	if got := ctr.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		worker := string(rune('a' + g))
		if got := vec.With(worker).Value(); got != perG {
			t.Errorf("counter{worker=%q} = %d, want %d", worker, got, perG)
		}
	}
	if got := gauge.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 (balanced inc/dec)", got)
	}
	if got := hist.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got, want := hist.Sum(), 0.75*goroutines*perG; got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestWritePrometheus pins the full exposition format: HELP/TYPE lines,
// sorted families, sorted label children, cumulative histogram buckets.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("record_z_total", "last family").Add(3)
	v := reg.CounterVec("record_a_total", "first family", "reason")
	v.With("encoding-conflict").Add(2)
	v.With("bus-contention").Inc()
	reg.Gauge("record_m_inflight", "a gauge").Set(5)
	h := reg.Histogram("record_h_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP record_a_total first family
# TYPE record_a_total counter
record_a_total{reason="bus-contention"} 1
record_a_total{reason="encoding-conflict"} 2
# HELP record_h_seconds a histogram
# TYPE record_h_seconds histogram
record_h_seconds_bucket{le="0.1"} 1
record_h_seconds_bucket{le="1"} 2
record_h_seconds_bucket{le="+Inf"} 3
record_h_seconds_sum 2.55
record_h_seconds_count 3
# HELP record_m_inflight a gauge
# TYPE record_m_inflight gauge
record_m_inflight 5
# HELP record_z_total last family
# TYPE record_z_total counter
record_z_total 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}

	// Determinism: a second scrape of the unchanged registry is
	// byte-identical.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Errorf("successive scrapes differ:\n%s\nvs\n%s", b.String(), b2.String())
	}
}

func TestGaugeVecDelete(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("record_test_target_inflight", "per-target", "key")
	v.With("k1").Set(2)
	v.Delete("k1")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "k1") {
		t.Errorf("deleted series still exposed:\n%s", b.String())
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.CounterVec("x", "", "l").With("v").Add(2)
	reg.Gauge("x", "").Set(1)
	reg.GaugeVec("x", "", "l").With("v").Dec()
	reg.GaugeVec("x", "", "l").Delete("v")
	reg.Histogram("x", "", nil).Observe(1)
	reg.HistogramVec("x", "", nil, "l").With("v").Observe(1)
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var scope *Scope
	sp, child := scope.Start("phase")
	sp.SetAttr("k", 1)
	sp.End()
	if child != nil {
		t.Errorf("nil scope produced non-nil child scope")
	}
}

func TestRegistryConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("record_x_total", "")
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("record_x_total", "")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("record_esc_total", "", "k").With(`a"b\c`).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `record_esc_total{k="a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}
