// Package obs is the observability layer of the retargetable compiler: a
// zero-dependency metrics registry, a hierarchical tracer, and profiling
// hooks, shared by the record CLI and the recordd service.
//
// The paper reports its results phase-by-phase — template counts,
// discarded-unsat templates, CPU seconds per pipeline phase (section 5) —
// and the production service needs the same numbers continuously.  This
// package gives both one source of truth:
//
//   - Registry: counters, gauges and fixed-bucket histograms with label
//     support.  Hot paths are single atomic operations, safe under the
//     lock-free parallel compiler; exposition renders the Prometheus text
//     format with instruments sorted by name and label values, so scrapes
//     and golden tests are deterministic.
//
//   - Tracer / Span: hierarchical spans for every pipeline phase and
//     sub-phase (per-destination ISE traversal, per-block control-flow
//     compilation, per-program compile) with attributes (route counts,
//     node counts, cache hit/miss).  A run exports as Chrome trace_event
//     JSON, loadable in chrome://tracing or Perfetto.  The clock is
//     injectable so serialized traces never depend on time.Now.
//
//   - Profiling hooks: DebugMux wires net/http/pprof (recordd
//     -debug-addr), and every span opens a runtime/trace region when
//     runtime tracing is enabled, so `go tool trace` shows pipeline
//     phases alongside scheduler events.
//
// Scope bundles a registry, a tracer and the current parent span into the
// single value threaded through core.Config into the pipeline.  Every
// type in this package is nil-safe the way diag.Reporter is: a nil
// *Scope, *Registry, *Tracer, instrument or *Span discards, so
// instrumented code needs no nil checks and uninstrumented runs pay one
// predictable branch.
//
// Instrument naming convention: record_<pkg>_<name>_<unit>, e.g.
// record_ise_templates_discarded_total, record_core_phase_seconds (see
// DESIGN.md section 10 for the full table).
package obs

import (
	"context"
	"time"
)

// Attr is one span attribute: a key with a value that must render
// deterministically (strings, integers, bools).
type Attr struct {
	Key   string
	Value interface{}
}

// KV builds an Attr.
func KV(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// Scope bundles the registry, the tracer and the current parent span.  It
// is the one value threaded through the pipeline; derived scopes returned
// by Start parent subsequent spans under the phase that created them.
// All methods are nil-safe: a nil *Scope returns nil components, and nil
// components discard.
type Scope struct {
	reg    *Registry
	tracer *Tracer
	span   *Span
	remote SpanContext // parents the next Start when span is nil
}

// NewScope builds a scope over a registry and a tracer; either may be nil.
// A scope with neither is useless but harmless.
func NewScope(reg *Registry, tr *Tracer) *Scope {
	if reg == nil && tr == nil {
		return nil
	}
	return &Scope{reg: reg, tracer: tr}
}

// Registry returns the scope's registry, or nil.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the scope's tracer, or nil.
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Span returns the scope's current parent span, or nil.
func (s *Scope) Span() *Span {
	if s == nil {
		return nil
	}
	return s.span
}

// WithRemote returns a copy of the scope whose next Start parents its
// span under the given cross-process span context — the receiving half
// of X-Record-Trace propagation.  Invalid contexts and nil scopes return
// the receiver unchanged, so a garbage header degrades to a local trace.
func (s *Scope) WithRemote(sc SpanContext) *Scope {
	if s == nil || !sc.Valid() {
		return s
	}
	return &Scope{reg: s.reg, tracer: s.tracer, span: s.span, remote: sc}
}

// Start opens a span named name under the scope's current span (or, for
// a scope built by WithRemote, under the remote parent) and returns it
// with a derived scope that parents subsequent spans under it.  The
// caller must End the span.  On a nil scope or a scope without a tracer
// the span is nil (End and SetAttr on it are no-ops) and the returned
// scope keeps whatever registry the receiver had.
func (s *Scope) Start(name string, attrs ...Attr) (*Span, *Scope) {
	if s == nil {
		return nil, nil
	}
	if s.tracer == nil {
		return nil, s
	}
	sp := s.tracer.start(s.span, s.remote, name, attrs)
	return sp, &Scope{reg: s.reg, tracer: s.tracer, span: sp}
}

// Event records a completed child span of the scope's current span with
// the caller-measured duration — one ring write, one clock read, no End
// bookkeeping.  Pipeline stages that already time themselves for the
// phase histograms use this instead of Start/End so the per-stage tracing
// tax is a single cheap append.  Nil scopes and scopes without a tracer
// discard.
func (s *Scope) Event(name string, dur time.Duration, attrs ...Attr) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.event(s.span, s.remote, name, dur, attrs)
}

// scopeCtxKey keys the request-scope value in a context.
type scopeCtxKey struct{}

// ContextWithScope attaches a scope to a context so layers that already
// thread contexts (rclient legs, rcache peer fetches, recordd handlers)
// can propagate the active trace without new parameters.  A nil scope
// returns ctx unchanged.
func ContextWithScope(ctx context.Context, s *Scope) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeCtxKey{}, s)
}

// ScopeFromContext returns the scope attached by ContextWithScope, or
// nil — and nil is safe to use directly, like every scope.
func ScopeFromContext(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeCtxKey{}).(*Scope)
	return s
}
