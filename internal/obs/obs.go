// Package obs is the observability layer of the retargetable compiler: a
// zero-dependency metrics registry, a hierarchical tracer, and profiling
// hooks, shared by the record CLI and the recordd service.
//
// The paper reports its results phase-by-phase — template counts,
// discarded-unsat templates, CPU seconds per pipeline phase (section 5) —
// and the production service needs the same numbers continuously.  This
// package gives both one source of truth:
//
//   - Registry: counters, gauges and fixed-bucket histograms with label
//     support.  Hot paths are single atomic operations, safe under the
//     lock-free parallel compiler; exposition renders the Prometheus text
//     format with instruments sorted by name and label values, so scrapes
//     and golden tests are deterministic.
//
//   - Tracer / Span: hierarchical spans for every pipeline phase and
//     sub-phase (per-destination ISE traversal, per-block control-flow
//     compilation, per-program compile) with attributes (route counts,
//     node counts, cache hit/miss).  A run exports as Chrome trace_event
//     JSON, loadable in chrome://tracing or Perfetto.  The clock is
//     injectable so serialized traces never depend on time.Now.
//
//   - Profiling hooks: DebugMux wires net/http/pprof (recordd
//     -debug-addr), and every span opens a runtime/trace region when
//     runtime tracing is enabled, so `go tool trace` shows pipeline
//     phases alongside scheduler events.
//
// Scope bundles a registry, a tracer and the current parent span into the
// single value threaded through core.Config into the pipeline.  Every
// type in this package is nil-safe the way diag.Reporter is: a nil
// *Scope, *Registry, *Tracer, instrument or *Span discards, so
// instrumented code needs no nil checks and uninstrumented runs pay one
// predictable branch.
//
// Instrument naming convention: record_<pkg>_<name>_<unit>, e.g.
// record_ise_templates_discarded_total, record_core_phase_seconds (see
// DESIGN.md section 10 for the full table).
package obs

// Attr is one span attribute: a key with a value that must render
// deterministically (strings, integers, bools).
type Attr struct {
	Key   string
	Value interface{}
}

// KV builds an Attr.
func KV(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// Scope bundles the registry, the tracer and the current parent span.  It
// is the one value threaded through the pipeline; derived scopes returned
// by Start parent subsequent spans under the phase that created them.
// All methods are nil-safe: a nil *Scope returns nil components, and nil
// components discard.
type Scope struct {
	reg    *Registry
	tracer *Tracer
	span   *Span
}

// NewScope builds a scope over a registry and a tracer; either may be nil.
// A scope with neither is useless but harmless.
func NewScope(reg *Registry, tr *Tracer) *Scope {
	if reg == nil && tr == nil {
		return nil
	}
	return &Scope{reg: reg, tracer: tr}
}

// Registry returns the scope's registry, or nil.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the scope's tracer, or nil.
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Span returns the scope's current parent span, or nil.
func (s *Scope) Span() *Span {
	if s == nil {
		return nil
	}
	return s.span
}

// Start opens a span named name under the scope's current span and
// returns it with a derived scope that parents subsequent spans under it.
// The caller must End the span.  On a nil scope or a scope without a
// tracer the span is nil (End and SetAttr on it are no-ops) and the
// returned scope keeps whatever registry the receiver had.
func (s *Scope) Start(name string, attrs ...Attr) (*Span, *Scope) {
	if s == nil {
		return nil, nil
	}
	if s.tracer == nil {
		return nil, s
	}
	sp := s.tracer.start(s.span, name, attrs)
	return sp, &Scope{reg: s.reg, tracer: s.tracer, span: sp}
}
