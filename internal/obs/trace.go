package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	rtrace "runtime/trace"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a tracer's span buffer; spans started beyond it
// still run (and still open runtime/trace regions) but are not recorded.
const DefaultMaxSpans = 1 << 20

// Tracer records hierarchical spans for one run.  Safe for concurrent
// use; spans started with distinct roots render on distinct Chrome trace
// lanes (tids), children share their parent's lane.  All methods are
// nil-safe.
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Time
	base    time.Time
	spans   []*Span
	nextSeq int
	nextTid int
	max     int
	dropped int
}

// TracerOption configures a tracer.
type TracerOption func(*Tracer)

// WithClock injects the time source (golden tests use a fake stepping
// clock, so serialized traces contain no time.Now output).
func WithClock(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// WithMaxSpans overrides the span buffer bound.
func WithMaxSpans(n int) TracerOption {
	return func(t *Tracer) { t.max = n }
}

// NewTracer returns a tracer whose timestamps are offsets from its
// creation instant.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{now: time.Now, max: DefaultMaxSpans}
	for _, o := range opts {
		o(t)
	}
	t.base = t.now()
	return t
}

// Span is one timed region of the pipeline.  End it exactly once; SetAttr
// before or after End.  Nil-safe.
type Span struct {
	tr     *Tracer
	name   string
	tid    int
	seq    int
	start  time.Duration
	dur    time.Duration
	ended  bool
	attrs  []Attr
	region *rtrace.Region
}

// start records a new span; nil receiver returns a nil span.
func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sp := &Span{tr: t, name: name, seq: t.nextSeq, attrs: append([]Attr(nil), attrs...)}
	t.nextSeq++
	if parent != nil {
		sp.tid = parent.tid
	} else {
		t.nextTid++
		sp.tid = t.nextTid
	}
	sp.start = t.now().Sub(t.base)
	if len(t.spans) < t.max {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	if rtrace.IsEnabled() {
		sp.region = rtrace.StartRegion(context.Background(), name)
	}
	return sp
}

// Root opens a top-level span (a new trace lane).  Prefer Scope.Start for
// pipeline code; Root is for drivers establishing the run's outermost
// span.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	return t.start(nil, name, attrs)
}

// Name returns the span name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// SetAttr attaches (or appends) an attribute.
func (sp *Span) SetAttr(key string, value interface{}) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	sp.tr.mu.Unlock()
}

// End closes the span; second and later Ends are no-ops.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	if sp.region != nil {
		sp.region.End()
		sp.region = nil
	}
	t := sp.tr
	t.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.dur = t.now().Sub(t.base) - sp.start
	}
	t.mu.Unlock()
}

// SpanInfo is the exported snapshot of one recorded span.
type SpanInfo struct {
	Name  string
	Tid   int
	Seq   int
	Start time.Duration
	Dur   time.Duration
	Ended bool
	Attrs []Attr
}

// Snapshot returns every recorded span in start order.
func (t *Tracer) Snapshot() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.spans))
	for i, sp := range t.spans {
		out[i] = SpanInfo{
			Name: sp.name, Tid: sp.tid, Seq: sp.seq,
			Start: sp.start, Dur: sp.dur, Ended: sp.ended,
			Attrs: append([]Attr(nil), sp.attrs...),
		}
	}
	return out
}

// Dropped returns how many spans exceeded the buffer bound.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one Chrome trace_event complete ("X") event.  Field
// order fixes the serialized key order, keeping golden traces stable.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   int64                  `json:"ts"` // µs since trace start
	Dur  int64                  `json:"dur"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes every ended span as Chrome trace_event
// JSON, loadable in chrome://tracing and Perfetto.  Events appear in span
// start order (the recording order), timestamps are microsecond offsets
// from the tracer's start — derived purely from the (injectable) clock —
// and args keys serialize sorted, so output for a fixed span history is
// byte-stable.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: no tracer")
	}
	infos := t.Snapshot()
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, si := range infos {
		if !si.Ended {
			continue
		}
		ev := chromeEvent{
			Name: si.Name, Ph: "X",
			Ts:  si.Start.Microseconds(),
			Dur: si.Dur.Microseconds(),
			Pid: 1, Tid: si.Tid,
		}
		if len(si.Attrs) > 0 {
			ev.Args = make(map[string]interface{}, len(si.Attrs))
			for _, a := range si.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
