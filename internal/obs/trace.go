package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	rtrace "runtime/trace"
	"sort"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a tracer's span ring; once full, new spans
// overwrite the oldest recorded ones (they still run and still open
// runtime/trace regions), so a long-lived tracer always holds the most
// recent history.
const DefaultMaxSpans = 1 << 20

// Tracer records hierarchical spans for one run.  Safe for concurrent
// use; spans started with distinct roots render on distinct Chrome trace
// lanes (tids), children share their parent's lane.  All methods are
// nil-safe.
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Time
	ids     func() uint64
	base    time.Time
	spans   []*Span // circular once len == max; head is the oldest slot
	head    int
	events  []eventRec // value ring for one-shot events; evHead is its oldest slot
	evHead  int
	nextSeq int
	nextTid int
	max     int
	dropped int
	dropC   *Counter // optional registry counter mirroring dropped
}

// eventRec is one one-shot span in the tracer's value ring.  Events skip
// the *Span allocation entirely: the hot compile path records thousands
// of stage spans per second, and a pointer ring of that many live heap
// objects is what the GC re-scans every cycle — a flat value slice is
// one allocation total, amortized to zero.
type eventRec struct {
	name   string
	tid    int
	seq    int
	sc     SpanContext
	parent SpanID
	start  time.Duration
	dur    time.Duration
	attrs  []Attr
}

// TracerOption configures a tracer.
type TracerOption func(*Tracer)

// WithClock injects the time source (golden tests use a fake stepping
// clock, so serialized traces contain no time.Now output).
func WithClock(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// WithMaxSpans overrides the span ring bound.
func WithMaxSpans(n int) TracerOption {
	return func(t *Tracer) { t.max = n }
}

// WithIDSource injects the 64-bit random source minting trace and span
// IDs, so tests produce deterministic identities.  The source must not
// return only zeros.
func WithIDSource(ids func() uint64) TracerOption {
	return func(t *Tracer) { t.ids = ids }
}

// WithDropCounter mirrors the tracer's overwritten-span count into a
// registry counter (record_obs_spans_dropped_total), so silent span loss
// past the ring bound is visible on /metrics, not just via Dropped.
func WithDropCounter(c *Counter) TracerOption {
	return func(t *Tracer) { t.dropC = c }
}

// NewTracer returns a tracer whose timestamps are offsets from its
// creation instant.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{now: time.Now, ids: randIDs, max: DefaultMaxSpans}
	for _, o := range opts {
		o(t)
	}
	t.base = t.now()
	return t
}

// Base returns the tracer's creation instant — the zero point its span
// timestamps are offsets from.  Exporting it lets multi-process trace
// fusion place each process's spans on one wall-clock timeline.
func (t *Tracer) Base() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.base
}

// newTraceID mints a nonzero 128-bit trace ID; call with t.mu held.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := t.ids(), t.ids()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

// newSpanID mints a nonzero 64-bit span ID; call with t.mu held.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.ids()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (56 - 8*i))
		}
	}
	return id
}

// Span is one timed region of the pipeline.  End it exactly once; SetAttr
// before or after End.  Nil-safe.
type Span struct {
	tr     *Tracer
	name   string
	tid    int
	seq    int
	sc     SpanContext
	parent SpanID // zero for a root with no remote parent
	start  time.Duration
	dur    time.Duration
	ended  bool
	attrs  []Attr
	region *rtrace.Region
}

// start records a new span; nil receiver returns a nil span.  A non-nil
// parent keeps the span in the parent's trace and lane; otherwise a valid
// remote context parents the span under a span from another process (new
// lane, inherited trace ID); otherwise the span roots a fresh trace.
// Once the ring is full the oldest recorded span is overwritten, counted
// in Dropped and the optional drop counter.
func (t *Tracer) start(parent *Span, remote SpanContext, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sp := &Span{tr: t, name: name, seq: t.nextSeq, attrs: append([]Attr(nil), attrs...)}
	t.nextSeq++
	switch {
	case parent != nil:
		sp.tid = parent.tid
		sp.sc.Trace = parent.sc.Trace
		sp.parent = parent.sc.Span
	case remote.Valid():
		t.nextTid++
		sp.tid = t.nextTid
		sp.sc.Trace = remote.Trace
		sp.parent = remote.Span
	default:
		t.nextTid++
		sp.tid = t.nextTid
		sp.sc.Trace = t.newTraceID()
	}
	sp.sc.Span = t.newSpanID()
	sp.start = t.now().Sub(t.base)
	overwrote := false
	if len(t.spans) < t.max {
		t.spans = append(t.spans, sp)
	} else if t.max > 0 {
		t.spans[t.head] = sp
		t.head = (t.head + 1) % t.max
		t.dropped++
		overwrote = true
	} else {
		t.dropped++
		overwrote = true
	}
	dropC := t.dropC
	t.mu.Unlock()
	if overwrote && dropC != nil {
		dropC.Inc()
	}
	if rtrace.IsEnabled() {
		sp.region = rtrace.StartRegion(context.Background(), name)
	}
	return sp
}

// event records an already-measured, already-ended span in one shot: the
// caller supplies the duration it timed itself, the span's start is
// reconstructed as now-dur from one clock read, and the value ring is
// touched under one lock acquisition with no per-event heap object.
// This is the hot compile path's stage-span primitive — a fraction of
// the cost of a Start/End pair, at the price of no live runtime/trace
// region and ring order following completion order rather than start
// order.  The event ring is bounded by the same max as the span ring;
// overwrites count into Dropped and the drop counter alike.
func (t *Tracer) event(parent *Span, remote SpanContext, name string, dur time.Duration, attrs []Attr) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	rec := eventRec{name: name, dur: dur}
	if len(attrs) > 0 {
		rec.attrs = append([]Attr(nil), attrs...)
	}
	t.mu.Lock()
	rec.seq = t.nextSeq
	t.nextSeq++
	switch {
	case parent != nil:
		rec.tid = parent.tid
		rec.sc.Trace = parent.sc.Trace
		rec.parent = parent.sc.Span
	case remote.Valid():
		t.nextTid++
		rec.tid = t.nextTid
		rec.sc.Trace = remote.Trace
		rec.parent = remote.Span
	default:
		t.nextTid++
		rec.tid = t.nextTid
		rec.sc.Trace = t.newTraceID()
	}
	rec.sc.Span = t.newSpanID()
	rec.start = t.now().Sub(t.base) - dur
	overwrote := false
	if len(t.events) < t.max {
		t.events = append(t.events, rec)
	} else if t.max > 0 {
		t.events[t.evHead] = rec
		t.evHead = (t.evHead + 1) % t.max
		t.dropped++
		overwrote = true
	} else {
		t.dropped++
		overwrote = true
	}
	dropC := t.dropC
	t.mu.Unlock()
	if overwrote && dropC != nil {
		dropC.Inc()
	}
}

// Root opens a top-level span (a new trace lane and a new trace ID).
// Prefer Scope.Start for pipeline code; Root is for drivers establishing
// the run's outermost span.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	return t.start(nil, SpanContext{}, name, attrs)
}

// Context returns the span's wire identity (zero for a nil span).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return sp.sc
}

// Name returns the span name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// SetAttr attaches (or appends) an attribute.
func (sp *Span) SetAttr(key string, value interface{}) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	sp.tr.mu.Unlock()
}

// End closes the span; second and later Ends are no-ops.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	if sp.region != nil {
		sp.region.End()
		sp.region = nil
	}
	t := sp.tr
	t.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.dur = t.now().Sub(t.base) - sp.start
	}
	t.mu.Unlock()
}

// SpanInfo is the exported snapshot of one recorded span.
type SpanInfo struct {
	Name   string
	Tid    int
	Seq    int
	Trace  TraceID
	Span   SpanID
	Parent SpanID // zero for roots with no remote parent
	Start  time.Duration
	Dur    time.Duration
	Ended  bool
	Attrs  []Attr
}

// Snapshot returns every recorded span — Start/End spans and one-shot
// events alike — in recording order (oldest surviving entry first once
// the rings have wrapped), merged by sequence number.
func (t *Tracer) Snapshot() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, 0, len(t.spans)+len(t.events))
	for i := 0; i < len(t.spans); i++ {
		sp := t.spans[(t.head+i)%len(t.spans)]
		out = append(out, SpanInfo{
			Name: sp.name, Tid: sp.tid, Seq: sp.seq,
			Trace: sp.sc.Trace, Span: sp.sc.Span, Parent: sp.parent,
			Start: sp.start, Dur: sp.dur, Ended: sp.ended,
			Attrs: append([]Attr(nil), sp.attrs...),
		})
	}
	for i := 0; i < len(t.events); i++ {
		ev := &t.events[(t.evHead+i)%len(t.events)]
		out = append(out, SpanInfo{
			Name: ev.name, Tid: ev.tid, Seq: ev.seq,
			Trace: ev.sc.Trace, Span: ev.sc.Span, Parent: ev.parent,
			Start: ev.start, Dur: ev.dur, Ended: true,
			Attrs: append([]Attr(nil), ev.attrs...),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dropped returns how many recorded spans were overwritten (or, with a
// zero ring, never stored) past the ring bound.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanRecord is the wire form of one span in a /v1/debug/spans dump.
// IDs are hex strings (the header encoding without version/flags);
// timestamps are microsecond offsets from the dump's base instant.
type SpanRecord struct {
	Name    string                 `json:"name"`
	Trace   string                 `json:"trace"`
	Span    string                 `json:"span"`
	Parent  string                 `json:"parent,omitempty"`
	Tid     int                    `json:"tid"`
	Seq     int                    `json:"seq"`
	StartUS int64                  `json:"start_us"`
	DurUS   int64                  `json:"dur_us"`
	Ended   bool                   `json:"ended"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
}

// SpanDump is one process's bounded span ring as served at
// /v1/debug/spans: the node's identity, the tracer's wall-clock zero
// point (for cross-process alignment), the overwrite count, and every
// surviving span.  cmd/tracefuse joins dumps from N nodes by trace ID.
type SpanDump struct {
	Node       string       `json:"node"`
	BaseUnixNS int64        `json:"base_unix_ns"`
	Dropped    int          `json:"dropped"`
	Spans      []SpanRecord `json:"spans"`
}

// Dump snapshots the ring in SpanDump form under the given node identity.
func (t *Tracer) Dump(node string) SpanDump {
	d := SpanDump{Node: node, BaseUnixNS: t.Base().UnixNano(), Dropped: t.Dropped(), Spans: []SpanRecord{}}
	for _, si := range t.Snapshot() {
		rec := SpanRecord{
			Name:  si.Name,
			Trace: si.Trace.String(),
			Span:  si.Span.String(),
			Tid:   si.Tid, Seq: si.Seq,
			StartUS: si.Start.Microseconds(),
			DurUS:   si.Dur.Microseconds(),
			Ended:   si.Ended,
		}
		if !si.Parent.IsZero() {
			rec.Parent = si.Parent.String()
		}
		if len(si.Attrs) > 0 {
			rec.Attrs = make(map[string]interface{}, len(si.Attrs))
			for _, a := range si.Attrs {
				rec.Attrs[a.Key] = a.Value
			}
		}
		d.Spans = append(d.Spans, rec)
	}
	return d
}

// chromeEvent is one Chrome trace_event complete ("X") event.  Field
// order fixes the serialized key order, keeping golden traces stable.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   int64                  `json:"ts"` // µs since trace start
	Dur  int64                  `json:"dur"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes every ended span as Chrome trace_event
// JSON, loadable in chrome://tracing and Perfetto.  Events appear in span
// start order (the recording order), timestamps are microsecond offsets
// from the tracer's start — derived purely from the (injectable) clock —
// and args keys serialize sorted, so output for a fixed span history is
// byte-stable.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: no tracer")
	}
	infos := t.Snapshot()
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, si := range infos {
		if !si.Ended {
			continue
		}
		ev := chromeEvent{
			Name: si.Name, Ph: "X",
			Ts:  si.Start.Microseconds(),
			Dur: si.Dur.Microseconds(),
			Pid: 1, Tid: si.Tid,
		}
		if len(si.Attrs) > 0 {
			ev.Args = make(map[string]interface{}, len(si.Attrs))
			for _, a := range si.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
