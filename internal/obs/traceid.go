package obs

import (
	"encoding/hex"
	"fmt"
	"math/rand/v2"
)

// TraceHeader is the wire header carrying a span's identity between
// processes, W3C traceparent-style: 00-<32 hex trace>-<16 hex span>-01.
// The record client injects it on every request, recordd echoes it on
// every response and re-injects it on peer artifact fetches, so one
// trace ID follows a compile across the whole fleet.
const TraceHeader = "X-Record-Trace"

// TraceID identifies one distributed trace: 128 random bits shared by
// every span the trace contains, across every process it crosses.
type TraceID [16]byte

// IsZero reports the invalid all-zero trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace: 64 random bits.
type SpanID [8]byte

// IsZero reports the invalid all-zero span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is a span's wire identity: which trace it belongs to and
// which span it is.  The zero value is invalid (no identity).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a usable identity.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Header renders the context in the X-Record-Trace wire format.
func (sc SpanContext) Header() string {
	return fmt.Sprintf("00-%s-%s-01", sc.Trace, sc.Span)
}

// ParseTraceHeader parses an X-Record-Trace value.  Unknown versions,
// wrong lengths, bad hex and all-zero IDs report ok=false — a garbage
// header can never fail a request, it only loses the trace linkage.
func ParseTraceHeader(v string) (sc SpanContext, ok bool) {
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags)
	if len(v) != 55 || v[:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, false
	}
	return sc, sc.Valid()
}

// randIDs is the default tracer ID source: the process-global PRNG,
// seeded randomly at startup, so concurrent tracers across a fleet mint
// disjoint IDs without coordination.
func randIDs() uint64 { return rand.Uint64() }
