package obs

import (
	"strings"
	"testing"
	"time"
)

// sloHarness builds a tracker over a settable fake clock.
func sloHarness(t *testing.T) (*SLOTracker, *Registry, *time.Time) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	reg := NewRegistry()
	tr := NewSLOTracker(reg, "record_recordd_slo", SLOConfig{
		Targets:      map[string]time.Duration{"compile": 100 * time.Millisecond},
		Availability: 0.999,
		FastWindow:   time.Minute,
		SlowWindow:   10 * time.Minute,
		Now:          func() time.Time { return now },
	})
	if tr == nil {
		t.Fatal("NewSLOTracker returned nil")
	}
	return tr, reg, &now
}

func TestSLOAllGoodBurnsNothing(t *testing.T) {
	tr, _, _ := sloHarness(t)
	for i := 0; i < 100; i++ {
		tr.Observe("compile", 10*time.Millisecond, true)
	}
	st := tr.Health()["compile"]
	if st.FastBurn != 0 || st.SlowBurn != 0 || st.Page || st.Warn {
		t.Fatalf("healthy traffic reported burn: %+v", st)
	}
	if st.Target != "100ms" {
		t.Fatalf("target = %q", st.Target)
	}
}

func TestSLOBadEventsPage(t *testing.T) {
	tr, reg, _ := sloHarness(t)
	// 10% bad against a 0.1% budget = burn 100x: far past both
	// thresholds on both windows.
	for i := 0; i < 90; i++ {
		tr.Observe("compile", 10*time.Millisecond, true)
	}
	for i := 0; i < 10; i++ {
		tr.Observe("compile", 10*time.Millisecond, false)
	}
	st := tr.Health()["compile"]
	if !st.Page || !st.Warn {
		t.Fatalf("100x burn did not alert: %+v", st)
	}
	if st.FastBurn < 99 || st.FastBurn > 101 {
		t.Fatalf("fast burn = %v, want ~100", st.FastBurn)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`record_recordd_slo_events_total{route="compile",result="bad"} 10`,
		`record_recordd_slo_events_total{route="compile",result="good"} 90`,
		`record_recordd_slo_alert{route="compile",severity="page"} 1`,
		`record_recordd_slo_burn_ppm{route="compile",window="fast"} 100000000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestSLOSlowLatencyIsBad(t *testing.T) {
	tr, _, _ := sloHarness(t)
	// Successful but over the 100ms target: burns budget.
	for i := 0; i < 10; i++ {
		tr.Observe("compile", 500*time.Millisecond, true)
	}
	st := tr.Health()["compile"]
	if st.FastBurn == 0 {
		t.Fatalf("slow successes burned nothing: %+v", st)
	}
}

func TestSLOFastWindowRecovers(t *testing.T) {
	tr, _, now := sloHarness(t)
	// A burst of failures, then two minutes of healthy traffic: the
	// fast (1m) window clears, the slow (10m) window still burns, so
	// neither alert fires (multi-window requires both).
	for i := 0; i < 10; i++ {
		tr.Observe("compile", time.Millisecond, false)
	}
	for i := 0; i < 120; i++ {
		*now = now.Add(time.Second)
		tr.Observe("compile", time.Millisecond, true)
	}
	st := tr.Health()["compile"]
	if st.FastBurn != 0 {
		t.Fatalf("fast window did not clear: %+v", st)
	}
	if st.SlowBurn == 0 {
		t.Fatalf("slow window forgot the burst: %+v", st)
	}
	if st.Page || st.Warn {
		t.Fatalf("single-window burn alerted: %+v", st)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	tr, _, now := sloHarness(t)
	for i := 0; i < 10; i++ {
		tr.Observe("compile", time.Millisecond, false)
	}
	// Beyond the slow window, even old disasters age out entirely.
	*now = now.Add(11 * time.Minute)
	tr.Observe("compile", time.Millisecond, true)
	st := tr.Health()["compile"]
	if st.FastBurn != 0 || st.SlowBurn != 0 {
		t.Fatalf("expired window still burning: %+v", st)
	}
}

func TestSLOUnknownRouteAndNilSafety(t *testing.T) {
	tr, reg, _ := sloHarness(t)
	tr.Observe("nope", time.Millisecond, true) // dropped, no panic
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `route="nope"`) {
		t.Fatal("unknown route leaked into exposition")
	}

	var nilT *SLOTracker
	nilT.Observe("compile", time.Millisecond, true)
	nilT.Refresh()
	if nilT.Health() != nil {
		t.Fatal("nil tracker returned health")
	}
	if NewSLOTracker(nil, "x", SLOConfig{Targets: map[string]time.Duration{"a": 1}}) != nil {
		t.Fatal("tracker built without registry")
	}
	if NewSLOTracker(NewRegistry(), "x", SLOConfig{}) != nil {
		t.Fatal("tracker built without targets")
	}
}
