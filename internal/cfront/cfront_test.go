package cfront

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestDeclarations(t *testing.T) {
	p := parse(t, `
int x;
int y = 5;
int z = -3;
int a[4] = {1, -2, 3};
int h = 0x1F;
`)
	if len(p.Decls) != 5 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	if p.Decls[1].Init[0] != 5 || p.Decls[2].Init[0] != -3 {
		t.Error("scalar initializers wrong")
	}
	a := p.Decls[3]
	if a.Size != 4 || len(a.Init) != 3 || a.Init[1] != -2 {
		t.Errorf("array decl = %+v", a)
	}
	if p.Decls[4].Init[0] != 31 {
		t.Error("hex literal wrong")
	}
}

func TestMainWrapper(t *testing.T) {
	p := parse(t, `
int x;
void main() {
  x = 1;
}
`)
	if len(p.Body) != 1 {
		t.Fatalf("body = %d stmts", len(p.Body))
	}
}

func TestTopLevelStatements(t *testing.T) {
	p := parse(t, `
int x; int y;
x = 2;
y = x * x;
`)
	if len(p.Body) != 2 {
		t.Fatalf("body = %d", len(p.Body))
	}
	if p.Body[1].String() != "y = (x * x);" {
		t.Errorf("stmt = %s", p.Body[1])
	}
}

func TestPrecedence(t *testing.T) {
	p := parse(t, `int a; int b; int c;
a = b + c * 2;
a = (b + c) * 2;
a = b << 1 + 1;
a = b & c | a;
`)
	want := []string{
		"a = (b + (c * 2));",
		"a = ((b + c) * 2);",
		"a = (b << 2);", // constant subexpression folds

		"a = ((b & c) | a);",
	}
	for i, w := range want {
		if got := p.Body[i].String(); got != w {
			t.Errorf("stmt %d = %s, want %s", i, got, w)
		}
	}
}

func TestForLoopForms(t *testing.T) {
	srcs := []string{
		`int s; int a[8]; for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }`,
		`int s; int a[8]; for (i = 0; i < 8; i++) { s = s + a[i]; }`,
		`int s; int a[8]; for (i = 0; i < 8; i += 2) { s = s + a[i]; }`,
	}
	for k, src := range srcs {
		p := parse(t, src)
		f, ok := p.Body[0].(*ir.For)
		if !ok {
			t.Fatalf("case %d: not a For", k)
		}
		if f.Var != "i" {
			t.Errorf("case %d: var = %s", k, f.Var)
		}
		as, err := ir.Flatten(p)
		if err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		wantIters := 8
		if k == 2 {
			wantIters = 4
		}
		if len(as) != wantIters {
			t.Errorf("case %d: %d iterations", k, len(as))
		}
	}
}

func TestCompoundAssign(t *testing.T) {
	p := parse(t, `int s; int x; s += x; s -= 2; s *= x;`)
	want := []string{"s = (s + x);", "s = (s - 2);", "s = (s * x);"}
	for i, w := range want {
		if got := p.Body[i].String(); got != w {
			t.Errorf("stmt %d = %s, want %s", i, got, w)
		}
	}
}

func TestArrayElementAssign(t *testing.T) {
	p := parse(t, `int a[4]; a[2] = 7; a[1] = a[2] + 1;`)
	if p.Body[0].String() != "a[2] = 7;" {
		t.Errorf("stmt = %s", p.Body[0])
	}
}

func TestUnaryAndComments(t *testing.T) {
	p := parse(t, `
int x; int y;
// line comment
x = -y;      /* block
               comment */
y = ~x;
`)
	if p.Body[0].String() != "x = -(y);" || p.Body[1].String() != "y = ~(x);" {
		t.Errorf("stmts = %s %s", p.Body[0], p.Body[1])
	}
}

func TestEndToEndFir(t *testing.T) {
	// A small FIR kernel, DSPStone style.
	src := `
int x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int h[4] = {1, 1, 1, 1};
int y[5];

void main() {
  for (n = 0; n < 5; n++) {
    y[n] = 0;
    for (k = 0; k < 4; k++) {
      y[n] = y[n] + h[k] * x[n + k];
    }
  }
}
`
	p := parse(t, src)
	env, err := ir.Run(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1 + 2 + 3 + 4, 2 + 3 + 4 + 5, 3 + 4 + 5 + 6, 4 + 5 + 6 + 7, 5 + 6 + 7 + 8}
	for i, w := range want {
		if env["y"][i] != w {
			t.Errorf("y[%d] = %d, want %d", i, env["y"][i], w)
		}
	}
}

func errContains(t *testing.T, src, want string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestSemanticErrors(t *testing.T) {
	errContains(t, `int x; x = ghost;`, "undeclared variable")
	errContains(t, `int x; ghost[0] = 1;`, "undeclared array")
	errContains(t, `int x; x[0] = 1;`, "indexing scalar")
	errContains(t, `int a[4]; int x; x = a;`, "without index")
	errContains(t, `int x; int x;`, "duplicate")
	errContains(t, `int i; for (i = 0; i < 3; i++) { }`, "shadows")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int;`,
		`int a[0];`,
		`int a[2] = {1,2,3};`,
		`int x; x = ;`,
		`int x; x = (1;`,
		`int x; for (i = 0; j < 3; i++) { x = 1; }`,
		`int x; for (i = 0; i < 3; i--) { x = 1; }`,
		`int x; x = 1`,
		`void main() { int x; }`,
		`int x; /* unterminated`,
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}
