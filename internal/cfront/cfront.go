// Package cfront implements RecC, the C-subset frontend of the compiler:
// integer scalar/array declarations with initializers, assignments, and
// counted for-loops.  It parses source text into the internal/ir program
// representation; loops are later unrolled by ir.Flatten, which is how the
// DSPStone kernels of the paper's figure 2 become the basic blocks that
// code selection operates on.
package cfront

import (
	"fmt"
	"strconv"

	"repro/internal/ir"
	"repro/internal/rtl"
)

// Parse parses RecC source into an IR program and checks name resolution.
func Parse(src string) (*ir.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// ---- lexer -------------------------------------------------------------

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tPunct // single/multi char operator, Text holds it
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
}

type lexer struct {
	src  string
	off  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

var multiOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func (l *lexer) next() (token, error) {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == '\n':
			l.line++
			l.off++
		case c == ' ' || c == '\t' || c == '\r':
			l.off++
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			l.off += 2
			for l.off+1 < len(l.src) && !(l.src[l.off] == '*' && l.src[l.off+1] == '/') {
				if l.src[l.off] == '\n' {
					l.line++
				}
				l.off++
			}
			if l.off+1 >= len(l.src) {
				return token{}, fmt.Errorf("line %d: unterminated comment", l.line)
			}
			l.off += 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil
scan:
	c := l.src[l.off]
	line := l.line
	if isAlpha(c) {
		start := l.off
		for l.off < len(l.src) && isAlnum(l.src[l.off]) {
			l.off++
		}
		return token{kind: tIdent, text: l.src[start:l.off], line: line}, nil
	}
	if isDigit(c) {
		start := l.off
		base := 10
		if c == '0' && l.off+1 < len(l.src) && (l.src[l.off+1] == 'x' || l.src[l.off+1] == 'X') {
			l.off += 2
			start = l.off
			base = 16
			for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
				l.off++
			}
		} else {
			for l.off < len(l.src) && isDigit(l.src[l.off]) {
				l.off++
			}
		}
		v, err := strconv.ParseInt(l.src[start:l.off], base, 64)
		if err != nil {
			return token{}, fmt.Errorf("line %d: bad number: %v", line, err)
		}
		return token{kind: tNum, val: v, line: line}, nil
	}
	for _, op := range multiOps {
		if l.off+len(op) <= len(l.src) && l.src[l.off:l.off+len(op)] == op {
			l.off += len(op)
			return token{kind: tPunct, text: op, line: line}, nil
		}
	}
	l.off++
	return token{kind: tPunct, text: string(c), line: line}, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// ---- parser ------------------------------------------------------------

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tPunct && p.tok.text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.next()
}

func (p *parser) isKeyword(s string) bool {
	return p.tok.kind == tIdent && p.tok.text == s
}

func (p *parser) parseProgram() (*ir.Program, error) {
	prog := &ir.Program{}
	// Declarations.
	for p.isKeyword("int") {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	// Optional "void main() { ... }" wrapper.
	if p.isKeyword("void") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tIdent {
			return nil, p.errf("expected function name")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		prog.Body = body
		if p.tok.kind != tEOF {
			return nil, p.errf("text after main function")
		}
		return prog, nil
	}
	// Otherwise: top-level statements.
	for p.tok.kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

func (p *parser) parseDecl() (*ir.Decl, error) {
	if err := p.next(); err != nil { // int
		return nil, err
	}
	if p.tok.kind != tIdent {
		return nil, p.errf("expected variable name")
	}
	d := &ir.Decl{Name: p.tok.text}
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.isPunct("[") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tNum || p.tok.val <= 0 {
			return nil, p.errf("expected positive array size")
		}
		d.Size = int(p.tok.val)
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.isPunct("=") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isPunct("{") {
			if err := p.next(); err != nil {
				return nil, err
			}
			for {
				v, err := p.parseSignedNum()
				if err != nil {
					return nil, err
				}
				d.Init = append(d.Init, v)
				if p.isPunct(",") {
					if err := p.next(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		} else {
			v, err := p.parseSignedNum()
			if err != nil {
				return nil, err
			}
			d.Init = []int64{v}
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if d.Size > 0 && len(d.Init) > d.Size {
		return nil, p.errf("too many initializers for %s[%d]", d.Name, d.Size)
	}
	return d, nil
}

func (p *parser) parseSignedNum() (int64, error) {
	neg := false
	if p.isPunct("-") {
		neg = true
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if p.tok.kind != tNum {
		return 0, p.errf("expected number")
	}
	v := p.tok.val
	if neg {
		v = -v
	}
	return v, p.next()
}

func (p *parser) parseBlock() ([]ir.Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var stmts []ir.Stmt
	for !p.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.next()
}

func (p *parser) parseStmt() (ir.Stmt, error) {
	if p.isKeyword("for") {
		return p.parseFor()
	}
	if p.isKeyword("if") {
		return p.parseIf()
	}
	if p.isKeyword("while") {
		return p.parseWhile()
	}
	if p.tok.kind != tIdent {
		return nil, p.errf("expected statement, found %q", p.tok.text)
	}
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	// Compound assignment sugar: += -= *=.
	for _, op := range []struct {
		text string
		op   rtl.Op
	}{{"+", rtl.OpAdd}, {"-", rtl.OpSub}, {"*", rtl.OpMul}} {
		if p.isPunct(op.text) {
			// Peek: must be "op=".
			save := *p.lex
			savedTok := p.tok
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.isPunct("=") {
				if err := p.next(); err != nil {
					return nil, err
				}
				rhs, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
				return &ir.Assign{LHS: lhs,
					RHS: &ir.Bin{Op: op.op, X: refAsExpr(lhs), Y: rhs}}, nil
			}
			*p.lex = save
			p.tok = savedTok
		}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ir.Assign{LHS: lhs, RHS: rhs}, nil
}

func refAsExpr(r *ir.Ref) ir.Expr {
	return &ir.Ref{Name: r.Name, Index: r.Index}
}

// parseFor parses the restricted counted loop
//
//	for (v = from; v < to; v = v + step) { ... }
//
// with "v++" and "v += step" accepted as sugar for the post statement.
func (p *parser) parseFor() (ir.Stmt, error) {
	if err := p.next(); err != nil { // for
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.tok.kind != tIdent {
		return nil, p.errf("expected loop variable")
	}
	v := p.tok.text
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if p.tok.kind != tIdent || p.tok.text != v {
		return nil, p.errf("loop condition must test %q", v)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	step, err := p.parseForPost(v)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ir.For{Var: v, From: from, To: to, Step: step, Body: body}, nil
}

func (p *parser) parseForPost(v string) (ir.Expr, error) {
	if p.tok.kind != tIdent || p.tok.text != v {
		return nil, p.errf("loop post statement must update %q", v)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	switch {
	case p.isPunct("+"):
		if err := p.next(); err != nil {
			return nil, err
		}
		switch {
		case p.isPunct("+"): // v++
			return &ir.Const{Val: 1}, p.next()
		case p.isPunct("="): // v += step
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.parseExpr()
		}
		return nil, p.errf("expected ++ or += in loop post")
	case p.isPunct("="): // v = v + step
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tIdent || p.tok.text != v {
			return nil, p.errf("loop post must be %s = %s + step", v, v)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("+"); err != nil {
			return nil, err
		}
		return p.parseExpr()
	}
	return nil, p.errf("unsupported loop post statement")
}

// parseIf parses "if (cond) { ... } [else { ... } | else if ...]".
func (p *parser) parseIf() (ir.Stmt, error) {
	if err := p.next(); err != nil { // if
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	thenB, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &ir.If{Cond: cond, Then: thenB}
	if p.isKeyword("else") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isKeyword("if") {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []ir.Stmt{nested}
		} else {
			elseB, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = elseB
		}
	}
	return st, nil
}

// parseWhile parses "while (cond) { ... }".
func (p *parser) parseWhile() (ir.Stmt, error) {
	if err := p.next(); err != nil { // while
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ir.While{Cond: cond, Body: body}, nil
}

func (p *parser) parseRef() (*ir.Ref, error) {
	name := p.tok.text
	if err := p.next(); err != nil {
		return nil, err
	}
	r := &ir.Ref{Name: name}
	if p.isPunct("[") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		r.Index = e
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Expression parsing, C precedence (subset): | ^ & ==/!= rel shift +- */% unary.
func (p *parser) parseExpr() (ir.Expr, error) { return p.parseBin(0) }

var precLevels = [][]struct {
	text string
	op   rtl.Op
}{
	{{"|", rtl.OpOr}},
	{{"^", rtl.OpXor}},
	{{"&", rtl.OpAnd}},
	{{"==", rtl.OpEq}, {"!=", rtl.OpNe}},
	{{"<", rtl.OpLt}, {"<=", rtl.OpLe}, {">", rtl.OpGt}, {">=", rtl.OpGe}},
	{{"<<", rtl.OpShl}, {">>", rtl.OpAshr}}, // C >> on signed int is arithmetic
	{{"+", rtl.OpAdd}, {"-", rtl.OpSub}},
	{{"*", rtl.OpMul}, {"/", rtl.OpDiv}, {"%", rtl.OpMod}},
}

func (p *parser) parseBin(level int) (ir.Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range precLevels[level] {
			if p.isPunct(cand.text) {
				if err := p.next(); err != nil {
					return nil, err
				}
				y, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				x = ir.Fold(&ir.Bin{Op: cand.op, X: x, Y: y})
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (ir.Expr, error) {
	switch {
	case p.isPunct("-"):
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ir.Fold(&ir.Un{Op: rtl.OpNeg, X: x}), nil
	case p.isPunct("~"):
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ir.Fold(&ir.Un{Op: rtl.OpNot, X: x}), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ir.Expr, error) {
	switch {
	case p.tok.kind == tNum:
		v := p.tok.val
		return &ir.Const{Val: v}, p.next()
	case p.tok.kind == tIdent:
		r, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		return r, nil
	case p.isPunct("("):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return nil, p.errf("expected expression, found %q", p.tok.text)
}

// ---- semantic check ------------------------------------------------------

// check verifies name resolution and array/scalar usage.
func check(prog *ir.Program) error {
	decls := make(map[string]*ir.Decl)
	for _, d := range prog.Decls {
		if _, dup := decls[d.Name]; dup {
			return fmt.Errorf("cfront: duplicate declaration of %s", d.Name)
		}
		decls[d.Name] = d
	}
	var checkExpr func(e ir.Expr, loops map[string]bool) error
	checkExpr = func(e ir.Expr, loops map[string]bool) error {
		switch x := e.(type) {
		case *ir.Const:
			return nil
		case *ir.Ref:
			if x.Index != nil {
				d, ok := decls[x.Name]
				if !ok {
					return fmt.Errorf("cfront: undeclared array %s", x.Name)
				}
				if !d.IsArray() {
					return fmt.Errorf("cfront: indexing scalar %s", x.Name)
				}
				return checkExpr(x.Index, loops)
			}
			if loops[x.Name] {
				return nil
			}
			d, ok := decls[x.Name]
			if !ok {
				return fmt.Errorf("cfront: undeclared variable %s", x.Name)
			}
			if d.IsArray() {
				return fmt.Errorf("cfront: array %s used without index", x.Name)
			}
			return nil
		case *ir.Bin:
			if err := checkExpr(x.X, loops); err != nil {
				return err
			}
			return checkExpr(x.Y, loops)
		case *ir.Un:
			return checkExpr(x.X, loops)
		}
		return fmt.Errorf("cfront: unknown expression %T", e)
	}
	var checkStmts func(stmts []ir.Stmt, loops map[string]bool) error
	checkStmts = func(stmts []ir.Stmt, loops map[string]bool) error {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.Assign:
				if err := checkExpr(refAsExpr(st.LHS), loops); err != nil {
					return err
				}
				if err := checkExpr(st.RHS, loops); err != nil {
					return err
				}
			case *ir.For:
				if _, declared := decls[st.Var]; declared {
					return fmt.Errorf("cfront: loop variable %s shadows a declaration", st.Var)
				}
				for _, e := range []ir.Expr{st.From, st.To, st.Step} {
					if err := checkExpr(e, loops); err != nil {
						return err
					}
				}
				inner := make(map[string]bool, len(loops)+1)
				for k := range loops {
					inner[k] = true
				}
				inner[st.Var] = true
				if err := checkStmts(st.Body, inner); err != nil {
					return err
				}
			case *ir.If:
				if err := checkExpr(st.Cond, loops); err != nil {
					return err
				}
				if err := checkStmts(st.Then, loops); err != nil {
					return err
				}
				if err := checkStmts(st.Else, loops); err != nil {
					return err
				}
			case *ir.While:
				if err := checkExpr(st.Cond, loops); err != nil {
					return err
				}
				if err := checkStmts(st.Body, loops); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return checkStmts(prog.Body, make(map[string]bool))
}
