// Package bind assigns program variables to target storage resources.
//
// The paper assumes all primary source program inputs and variables are a
// priori bound to memory or register resources (section 3.1).  This
// implementation lays program variables out frame-style in the target's
// data memory and reserves a scratch region for spill cells.  On targets
// with a second addressable memory (e.g. a coefficient ROM beside the data
// RAM, as in Harvard-style DSPs), constant arrays — initialized and never
// written — are placed there alternately, which is what lets dual-bus
// multiply-accumulate routes be selected.  It also lowers IR
// expressions/assignments to RT-level expression trees whose leaves are
// storage reads: the exact subject trees code selection covers.
package bind

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/netlist"
	"repro/internal/rtl"
)

// ScratchCells is the preferred number of spill cells reserved beyond
// program variables; tiny memories get fewer (see MinScratchCells).
const ScratchCells = 16

// MinScratchCells is the minimum spill region size.
const MinScratchCells = 2

// Region describes one addressable memory used for variables.
type Region struct {
	Memory    string // qualified storage name
	Width     int    // cell width
	AddrWidth int    // width used for address constants
	Size      int    // cell count
}

// Placement locates one variable.
type Placement struct {
	Storage string
	Addr    int
}

// Binding maps program variables to cells of target memories.
type Binding struct {
	// Primary is the main (writable) data memory; scratch cells live here.
	Primary Region
	// ROM is the optional second memory for constant arrays (nil when the
	// target has a single data memory).
	ROM *Region

	// Place maps variable names to their location.
	Place map[string]Placement
	// ScratchBase is the first spill cell (in Primary); ScratchLen cells
	// follow.
	ScratchBase int
	ScratchLen  int

	// Width is the data word width (Primary cell width).
	Width int
	// Memory and AddrWidth mirror Primary for convenience.
	Memory    string
	AddrWidth int

	decls map[string]*ir.Decl
}

// Bind lays out the program's variables.  The primary memory is the
// largest writable addressable data storage; if another addressable data
// storage exists, constant arrays alternate between it and the primary.
func Bind(prog *ir.Program, net *netlist.Netlist) (*Binding, error) {
	var addressable []*netlist.Storage
	for _, s := range net.DataStorages() {
		if s.Mode || s.PC || s.Size() <= 1 {
			continue
		}
		addressable = append(addressable, s)
	}
	sort.Slice(addressable, func(i, j int) bool {
		if addressable[i].Size() != addressable[j].Size() {
			return addressable[i].Size() > addressable[j].Size()
		}
		return addressable[i].QName() < addressable[j].QName()
	})
	var primary *netlist.Storage
	for _, s := range addressable {
		if s.Writable() {
			primary = s
			break
		}
	}
	if primary == nil {
		return nil, fmt.Errorf("bind: target %s has no writable data memory", net.Name)
	}
	var second *netlist.Storage
	for _, s := range addressable {
		if s != primary {
			second = s
			break
		}
	}

	b := &Binding{
		Primary: Region{Memory: primary.QName(), Width: primary.Width(),
			AddrWidth: addrWidth(primary.Size()), Size: primary.Size()},
		Place: make(map[string]Placement),
		decls: make(map[string]*ir.Decl),
	}
	b.Memory = b.Primary.Memory
	b.Width = b.Primary.Width
	b.AddrWidth = b.Primary.AddrWidth
	if second != nil {
		b.ROM = &Region{Memory: second.QName(), Width: second.Width(),
			AddrWidth: addrWidth(second.Size()), Size: second.Size()}
	}

	written := writtenVars(prog.Body)
	nextPrimary, nextROM := 0, 0
	toROM := true // alternate constant arrays, ROM first
	for _, d := range prog.Decls {
		b.decls[d.Name] = d
		constArray := d.IsArray() && len(d.Init) > 0 && !written[d.Name]
		if constArray && b.ROM != nil && toROM && nextROM+d.Cells() <= b.ROM.Size {
			b.Place[d.Name] = Placement{Storage: b.ROM.Memory, Addr: nextROM}
			nextROM += d.Cells()
			toROM = false
			continue
		}
		if constArray {
			toROM = true
		}
		b.Place[d.Name] = Placement{Storage: b.Primary.Memory, Addr: nextPrimary}
		nextPrimary += d.Cells()
	}
	b.ScratchBase = nextPrimary
	b.ScratchLen = ScratchCells
	if avail := b.Primary.Size - nextPrimary; avail < b.ScratchLen {
		b.ScratchLen = avail
	}
	if b.ScratchLen < MinScratchCells {
		return nil, fmt.Errorf("bind: program needs %d cells (+%d scratch) but %s has only %d",
			nextPrimary, MinScratchCells, b.Primary.Memory, b.Primary.Size)
	}
	return b, nil
}

// writtenVars collects the names assigned anywhere in the program.
func writtenVars(stmts []ir.Stmt) map[string]bool {
	out := make(map[string]bool)
	var walk func(stmts []ir.Stmt)
	walk = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.Assign:
				out[st.LHS.Name] = true
			case *ir.For:
				walk(st.Body)
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			case *ir.While:
				walk(st.Body)
			}
		}
	}
	walk(stmts)
	return out
}

func addrWidth(size int) int {
	w := 1
	for (1 << uint(w)) < size {
		w++
	}
	return w
}

// regionOf returns the region holding the given storage.
func (b *Binding) regionOf(storage string) Region {
	if b.ROM != nil && b.ROM.Memory == storage {
		return *b.ROM
	}
	return b.Primary
}

// AddrOf returns the placement of a variable.
func (b *Binding) AddrOf(name string) (Placement, bool) {
	p, ok := b.Place[name]
	return p, ok
}

// LowerExpr converts an IR expression into an RT-level subject tree at the
// target word width.
func (b *Binding) LowerExpr(e ir.Expr) (*rtl.Expr, error) {
	switch x := e.(type) {
	case *ir.Const:
		return rtl.NewConst(rtl.Wrap(x.Val, b.Width), b.Width), nil
	case *ir.Ref:
		place, addr, err := b.lowerAddr(x)
		if err != nil {
			return nil, err
		}
		return rtl.NewRead(place.Storage, b.regionOf(place.Storage).Width, addr), nil
	case *ir.Bin:
		// x - c == x + (-c): widens coverage on machines whose only
		// immediate path feeds an adder.
		if c, ok := x.Y.(*ir.Const); ok && x.Op == rtl.OpSub {
			return b.LowerExpr(&ir.Bin{Op: rtl.OpAdd, X: x.X, Y: &ir.Const{Val: -c.Val}})
		}
		l, err := b.LowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		r, err := b.LowerExpr(x.Y)
		if err != nil {
			return nil, err
		}
		w := opWidth(x.Op, b.Width)
		if l.Kind == rtl.Const && r.Kind == rtl.Const {
			return rtl.NewConst(rtl.EvalBin(x.Op, l.Val, r.Val, w), w), nil
		}
		return rtl.NewOp(x.Op, w, l, r), nil
	case *ir.Un:
		k, err := b.LowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		if k.Kind == rtl.Const {
			return rtl.NewConst(rtl.EvalUn(x.Op, k.Val, b.Width), b.Width), nil
		}
		return rtl.NewOp(x.Op, b.Width, k), nil
	}
	return nil, fmt.Errorf("bind: cannot lower %T", e)
}

func opWidth(op rtl.Op, w int) int {
	switch op {
	case rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe, rtl.OpGt, rtl.OpGe:
		return 1
	}
	return w
}

// lowerAddr builds the address tree for a variable reference.
func (b *Binding) lowerAddr(r *ir.Ref) (Placement, *rtl.Expr, error) {
	place, ok := b.Place[r.Name]
	if !ok {
		return place, nil, fmt.Errorf("bind: unbound variable %s", r.Name)
	}
	region := b.regionOf(place.Storage)
	d := b.decls[r.Name]
	if r.Index == nil {
		if d != nil && d.IsArray() {
			return place, nil, fmt.Errorf("bind: array %s used without index", r.Name)
		}
		return place, rtl.NewConst(int64(place.Addr), region.AddrWidth), nil
	}
	if d == nil || !d.IsArray() {
		return place, nil, fmt.Errorf("bind: indexing scalar %s", r.Name)
	}
	if c, isConst := ir.Fold(r.Index).(*ir.Const); isConst {
		if c.Val < 0 || int(c.Val) >= d.Size {
			return place, nil, fmt.Errorf("bind: %s[%d] out of range (size %d)", r.Name, c.Val, d.Size)
		}
		return place, rtl.NewConst(int64(place.Addr)+c.Val, region.AddrWidth), nil
	}
	// Run-time index: base + index computation, at address width.
	idx, err := b.LowerExpr(r.Index)
	if err != nil {
		return place, nil, err
	}
	return place, rtl.NewOp(rtl.OpAdd, region.AddrWidth,
		rtl.NewConst(int64(place.Addr), region.AddrWidth),
		narrow(idx, region.AddrWidth)), nil
}

// narrow adapts a word-width tree to address width via a slice node (the
// usual address-bus truncation).
func narrow(e *rtl.Expr, w int) *rtl.Expr {
	if e.Width == w {
		return e
	}
	if e.Width > w {
		return rtl.NewSlice(w-1, 0, e)
	}
	return e // narrower-than-bus values are used as-is
}

// ET is one lowered expression tree with its destination.
type ET struct {
	Dest     string    // destination storage
	DestAddr *rtl.Expr // cell address tree (nil for register destinations)
	Src      *rtl.Expr
	Source   string // original statement text for listings
}

// LowerAssign converts one flattened IR assignment to an ET.
func (b *Binding) LowerAssign(a *ir.Assign) (*ET, error) {
	place, addr, err := b.lowerAddr(a.LHS)
	if err != nil {
		return nil, err
	}
	if b.ROM != nil && place.Storage == b.ROM.Memory {
		return nil, fmt.Errorf("bind: internal: assignment to ROM-placed %s", a.LHS.Name)
	}
	src, err := b.LowerExpr(a.RHS)
	if err != nil {
		return nil, err
	}
	return &ET{Dest: place.Storage, DestAddr: addr, Src: src, Source: a.String()}, nil
}

// LowerProgram flattens and lowers a whole program to ETs.
func (b *Binding) LowerProgram(prog *ir.Program) ([]*ET, error) {
	assigns, err := ir.Flatten(prog)
	if err != nil {
		return nil, err
	}
	ets := make([]*ET, 0, len(assigns))
	for _, a := range assigns {
		et, err := b.LowerAssign(a)
		if err != nil {
			return nil, err
		}
		ets = append(ets, et)
	}
	return ets, nil
}

// InitialImages builds the initial memory images from declarations
// (variables without initializers are zero).
func (b *Binding) InitialImages(prog *ir.Program) map[string][]int64 {
	imgs := make(map[string][]int64)
	imgs[b.Primary.Memory] = make([]int64, b.Primary.Size)
	if b.ROM != nil {
		imgs[b.ROM.Memory] = make([]int64, b.ROM.Size)
	}
	for _, d := range prog.Decls {
		place := b.Place[d.Name]
		img := imgs[place.Storage]
		w := b.regionOf(place.Storage).Width
		for i, v := range d.Init {
			if place.Addr+i < len(img) {
				img[place.Addr+i] = rtl.Wrap(v, w)
			}
		}
	}
	return imgs
}

// Layout renders the frame layout for diagnostics.
func (b *Binding) Layout() string {
	names := make([]string, 0, len(b.Place))
	for n := range b.Place {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := b.Place[names[i]], b.Place[names[j]]
		if pi.Storage != pj.Storage {
			return pi.Storage < pj.Storage
		}
		return pi.Addr < pj.Addr
	})
	s := fmt.Sprintf("primary memory %s (%d x %d bits)", b.Primary.Memory, b.Primary.Size, b.Primary.Width)
	if b.ROM != nil {
		s += fmt.Sprintf(", constant memory %s (%d x %d bits)", b.ROM.Memory, b.ROM.Size, b.ROM.Width)
	}
	s += ":\n"
	for _, n := range names {
		p := b.Place[n]
		d := b.decls[n]
		s += fmt.Sprintf("  %-12s %4d: %s", p.Storage, p.Addr, n)
		if d != nil && d.IsArray() {
			s += fmt.Sprintf("[%d]", d.Size)
		}
		s += "\n"
	}
	s += fmt.Sprintf("  %-12s %4d: <scratch x %d>\n", b.Primary.Memory, b.ScratchBase, b.ScratchLen)
	return s
}
