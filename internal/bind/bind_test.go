package bind

import (
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/hdl"
	"repro/internal/ir"
	"repro/internal/netlist"
	"repro/internal/rtl"
)

// dualMem has a 64-cell RAM plus a 32-cell ROM.
const dualMem = `
PROCESSOR bindtest;
MODULE Ram (IN a: 6; IN d: 16; IN w: 1; OUT q: 16);
VAR m: 16 [64];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;
MODULE CRom (IN a: 5; OUT q: 16);
VAR m: 16 [32];
BEGIN q <- m[a]; END;
MODULE IRom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
PARTS
  ram : Ram; crom : CRom; imem : IRom INSTRUCTION; pc : PcReg PC; pinc : Inc;
CONNECT
  ram.a <- imem.q[5:0];
  ram.d <- imem.q;
  ram.w <- imem.q[15];
  crom.a <- imem.q[4:0];
  imem.a <- pc.q;
  pinc.a <- pc.q;
  pc.d <- pinc.y;
END.
`

func net(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	m, err := hdl.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func prog(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := cfront.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBindLayout(t *testing.T) {
	p := prog(t, `
int x;
int a[4] = {1,2,3,4};
int b[4] = {5,6,7,8};
int c[4];
void main() { x = a[0]; c[0] = x; }
`)
	b, err := Bind(p, net(t, dualMem))
	if err != nil {
		t.Fatal(err)
	}
	if b.Primary.Memory != "ram.m" || b.Primary.Size != 64 {
		t.Errorf("primary = %+v", b.Primary)
	}
	if b.ROM == nil || b.ROM.Memory != "crom.m" {
		t.Fatalf("ROM = %+v", b.ROM)
	}
	// a is the first constant array -> ROM; b alternates back to primary;
	// c is written -> primary.
	pa, _ := b.AddrOf("a")
	pb, _ := b.AddrOf("b")
	pc, _ := b.AddrOf("c")
	px, _ := b.AddrOf("x")
	if pa.Storage != "crom.m" {
		t.Errorf("a placed in %s", pa.Storage)
	}
	if pb.Storage != "ram.m" || pc.Storage != "ram.m" || px.Storage != "ram.m" {
		t.Errorf("b/c/x placements: %v %v %v", pb, pc, px)
	}
	if b.ScratchLen < MinScratchCells {
		t.Errorf("scratch = %d", b.ScratchLen)
	}
	if !strings.Contains(b.Layout(), "crom.m") {
		t.Error("layout rendering lacks ROM")
	}
}

func TestBindOverflow(t *testing.T) {
	p := prog(t, `int big[100]; big[0] = 1;`)
	if _, err := Bind(p, net(t, dualMem)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestLowerExprShapes(t *testing.T) {
	p := prog(t, `
int x = 1;
int a[4] = {1,2,3,4};
int y;
void main() { y = x + a[2]; }
`)
	b, err := Bind(p, net(t, dualMem))
	if err != nil {
		t.Fatal(err)
	}
	e, err := b.LowerExpr(&ir.Bin{Op: rtl.OpAdd,
		X: &ir.Ref{Name: "x"},
		Y: &ir.Ref{Name: "a", Index: &ir.Const{Val: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != rtl.OpApp || e.Op != rtl.OpAdd {
		t.Fatalf("lowered = %s", e)
	}
	if e.Kids[0].Storage != "ram.m" || e.Kids[1].Storage != "crom.m" {
		t.Errorf("leaf storages: %s, %s", e.Kids[0].Storage, e.Kids[1].Storage)
	}
	// The address constant is base + 2 at ROM address width.
	pa, _ := b.AddrOf("a")
	if addr := e.Kids[1].Addr(); addr.Val != int64(pa.Addr+2) {
		t.Errorf("a[2] address = %d", addr.Val)
	}
	// Constants wrap at word width.
	c, err := b.LowerExpr(&ir.Const{Val: 70000})
	if err != nil {
		t.Fatal(err)
	}
	if c.Val != rtl.Wrap(70000, 16) {
		t.Errorf("const = %d", c.Val)
	}
}

func TestSubConstBecomesAddNeg(t *testing.T) {
	p := prog(t, `int x = 9; int y; y = x - 3;`)
	b, err := Bind(p, net(t, dualMem))
	if err != nil {
		t.Fatal(err)
	}
	e, err := b.LowerExpr(&ir.Bin{Op: rtl.OpSub,
		X: &ir.Ref{Name: "x"}, Y: &ir.Const{Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != rtl.OpAdd || e.Kids[1].Val != -3 {
		t.Errorf("lowered = %s", e)
	}
}

func TestLowerErrors(t *testing.T) {
	p := prog(t, `int x; int a[4]; x = 0; a[0] = 0;`)
	b, err := Bind(p, net(t, dualMem))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.LowerExpr(&ir.Ref{Name: "ghost"}); err == nil {
		t.Error("unbound variable lowered")
	}
	if _, err := b.LowerExpr(&ir.Ref{Name: "a"}); err == nil {
		t.Error("array without index lowered")
	}
	if _, err := b.LowerExpr(&ir.Ref{Name: "x", Index: &ir.Const{Val: 0}}); err == nil {
		t.Error("indexed scalar lowered")
	}
	if _, err := b.LowerExpr(&ir.Ref{Name: "a", Index: &ir.Const{Val: 9}}); err == nil {
		t.Error("out-of-range index lowered")
	}
}

func TestLowerProgramAndImages(t *testing.T) {
	p := prog(t, `
int k[2] = {3, 4};
int s;
void main() { s = k[0] + k[1]; }
`)
	b, err := Bind(p, net(t, dualMem))
	if err != nil {
		t.Fatal(err)
	}
	ets, err := b.LowerProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ets) != 1 || ets[0].Dest != "ram.m" {
		t.Fatalf("ets = %+v", ets)
	}
	imgs := b.InitialImages(p)
	pk, _ := b.AddrOf("k")
	if imgs[pk.Storage][pk.Addr] != 3 || imgs[pk.Storage][pk.Addr+1] != 4 {
		t.Errorf("ROM image wrong: %v", imgs[pk.Storage][:4])
	}
	if len(imgs["ram.m"]) != 64 {
		t.Error("primary image size wrong")
	}
}

func TestRuntimeIndexLowering(t *testing.T) {
	p := prog(t, `int a[4]; int i; int y; a[0]=0; i = 1; y = a[i];`)
	b, err := Bind(p, net(t, dualMem))
	if err != nil {
		t.Fatal(err)
	}
	e, err := b.LowerExpr(&ir.Ref{Name: "a", Index: &ir.Ref{Name: "i"}})
	if err != nil {
		t.Fatal(err)
	}
	addr := e.Addr()
	if addr.Kind != rtl.OpApp || addr.Op != rtl.OpAdd {
		t.Fatalf("runtime address = %s", addr)
	}
	if addr.Width != b.Primary.AddrWidth {
		t.Errorf("address width = %d", addr.Width)
	}
}
