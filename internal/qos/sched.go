package qos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/resilience"
)

// Config tunes a Scheduler.
type Config struct {
	// Capacity is the number of worker slots (the old pool semaphore).
	Capacity int
	// MaxQueue bounds the total queued waiters across all classes; an
	// arrival beyond it is shed with 429.  0 = unlimited.
	MaxQueue int
	// Weights is the per-class dispatch weighting; non-positive entries
	// take DefaultWeights.
	Weights [NumClasses]int
	// RetryAfter is the per-class Retry-After hint on sheds;
	// non-positive entries take DefaultRetryAfter.
	RetryAfter [NumClasses]time.Duration
	// Drain, when closed, releases every queued waiter with a
	// DrainingError and refuses new arrivals.  Nil = never drains.
	Drain <-chan struct{}
	// OnDepth, when set, observes each class's queue depth after every
	// change (for gauges).  Called with the scheduler lock held: it must
	// not call back into the scheduler.
	OnDepth func(cl Class, depth int)
}

// waiter states.  Transitions happen under the scheduler mutex; the
// state decides who owns the slot (or the shed error) when a grant
// races the waiter's context cancellation.
type wstate uint8

const (
	wQueued  wstate = iota // in a class queue
	wGranted               // popped and handed a slot
	wShed                  // evicted; its res carries the shed error
	wGone                  // abandoned by its own goroutine
)

type waiter struct {
	class Class
	state wstate
	res   chan error // buffered(1): nil = slot granted, else refusal
}

// Scheduler is a weighted multi-queue worker pool: Capacity slots,
// one FIFO queue per priority class, and smooth weighted round-robin
// dispatch across non-empty queues so batch load never starves
// interactive traffic.  Under overload batch is always shed first: an
// interactive arrival that finds the queue full evicts the newest
// queued batch waiter and takes its place.
//
// Background pre-warm work runs on the same slots via AcquireIdle, but
// strictly subordinate: an idle lease is granted only when no real
// request is running or waiting, and is revoked (its context cancelled)
// the moment a real request has to queue.
//
// A nil *Scheduler grants everything immediately (unlimited pool).
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	free   int // unclaimed slots
	queues [NumClasses][]*waiter
	credit [NumClasses]int // smooth-WRR running credit

	leases map[*idleLease]struct{} // outstanding pre-warm slot leases

	shed       [NumClasses]uint64
	dispatched [NumClasses]uint64
	idleGrants uint64
}

// NewScheduler builds a Scheduler; zero-value Config fields take the
// package defaults (Capacity 4, unlimited queue, DefaultWeights).
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4
	}
	for c := range cfg.Weights {
		if cfg.Weights[c] <= 0 {
			cfg.Weights[c] = DefaultWeights[c]
		}
	}
	for c := range cfg.RetryAfter {
		if cfg.RetryAfter[c] <= 0 {
			cfg.RetryAfter[c] = DefaultRetryAfter[c]
		}
	}
	return &Scheduler{cfg: cfg, free: cfg.Capacity, leases: make(map[*idleLease]struct{})}
}

// Acquire claims a worker slot for a real request of class cl, queueing
// behind the weighted dispatcher when the pool is busy.  The returned
// release must be called exactly once when the work is done (it is
// idempotent).  Refusals are typed: *resilience.OverloadError when the
// waiter bound sheds the request (or evicts it, batch first),
// *resilience.DrainingError when the drain starts, and the context's
// error when the caller gives up first.
func (s *Scheduler) Acquire(ctx context.Context, cl Class) (release func(), err error) {
	if s == nil {
		return func() {}, nil
	}
	select {
	case <-s.cfg.Drain:
		return nil, &resilience.DrainingError{After: time.Second}
	default:
	}

	s.mu.Lock()
	if s.free > 0 && s.queuedLocked() == 0 {
		s.free--
		s.dispatched[cl]++
		s.mu.Unlock()
		return s.releaseOnce(), nil
	}
	// A real request has to wait: pre-warm leases yield their slots now.
	s.revokeLeasesLocked()
	if s.cfg.MaxQueue > 0 && s.queuedLocked() >= s.cfg.MaxQueue {
		// Full queue: batch arrivals shed; interactive arrivals displace
		// the newest queued batch waiter, and only shed when the queue
		// is all interactive.
		if cl == Batch || !s.evictNewestLocked(Batch) {
			s.shed[cl]++
			depth := s.queuedLocked()
			s.mu.Unlock()
			return nil, &resilience.OverloadError{
				Queue: depth, Limit: s.cfg.MaxQueue, After: s.cfg.RetryAfter[cl],
			}
		}
	}
	w := &waiter{class: cl, res: make(chan error, 1)}
	s.queues[cl] = append(s.queues[cl], w)
	s.depthChangedLocked(cl)
	s.mu.Unlock()

	select {
	case err := <-w.res:
		if err != nil {
			return nil, err
		}
		return s.releaseOnce(), nil
	case <-ctx.Done():
		return nil, s.abandon(w, fmt.Errorf("worker pool saturated: %w", ctx.Err()))
	case <-s.cfg.Drain:
		return nil, s.abandon(w, &resilience.DrainingError{After: time.Second})
	}
}

// abandon resolves the race between a waiter's own wakeup (ctx done or
// drain) and a concurrent grant or eviction.
func (s *Scheduler) abandon(w *waiter, cause error) error {
	s.mu.Lock()
	switch w.state {
	case wQueued:
		s.removeLocked(w)
		w.state = wGone
		s.depthChangedLocked(w.class)
		s.mu.Unlock()
		return cause
	case wGranted:
		// The grant raced our wakeup: we own a slot nobody will use —
		// hand it to the next waiter.
		s.handBackLocked()
		s.mu.Unlock()
		return cause
	default: // wShed: the eviction's typed error wins
		s.mu.Unlock()
		return <-w.res
	}
}

// releaseOnce returns the idempotent slot-release closure handed to a
// granted waiter.
func (s *Scheduler) releaseOnce() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.handBackLocked()
			s.mu.Unlock()
		})
	}
}

// handBackLocked returns one slot to the pool: the weighted dispatcher
// picks the next waiter, or the slot goes free.
func (s *Scheduler) handBackLocked() {
	if w := s.nextLocked(); w != nil {
		w.state = wGranted
		s.dispatched[w.class]++
		s.depthChangedLocked(w.class)
		w.res <- nil
		return
	}
	s.free++
}

// nextLocked pops the next waiter by smooth weighted round-robin over
// the non-empty class queues: each round every contending class gains
// its weight in credit, the highest-credit class is served and pays the
// total back.  An emptied queue forfeits its credit, so a class cannot
// bank credit while it has nothing to run.
func (s *Scheduler) nextLocked() *waiter {
	total, best := 0, -1
	for c := 0; c < NumClasses; c++ {
		if len(s.queues[c]) == 0 {
			s.credit[c] = 0
			continue
		}
		s.credit[c] += s.cfg.Weights[c]
		total += s.cfg.Weights[c]
		if best < 0 || s.credit[c] > s.credit[best] {
			best = c
		}
	}
	if best < 0 {
		return nil
	}
	s.credit[best] -= total
	w := s.queues[best][0]
	s.queues[best] = s.queues[best][1:]
	return w
}

// evictNewestLocked sheds the newest queued waiter of class cl to make
// room, delivering it a typed overload error.  Reports whether a victim
// existed.
func (s *Scheduler) evictNewestLocked(cl Class) bool {
	q := s.queues[cl]
	if len(q) == 0 {
		return false
	}
	w := q[len(q)-1]
	s.queues[cl] = q[:len(q)-1]
	w.state = wShed
	s.shed[cl]++
	s.depthChangedLocked(cl)
	w.res <- &resilience.OverloadError{
		Queue: s.queuedLocked(), Limit: s.cfg.MaxQueue, After: s.cfg.RetryAfter[cl],
	}
	return true
}

// removeLocked splices w out of its class queue.
func (s *Scheduler) removeLocked(w *waiter) {
	q := s.queues[w.class]
	for i, cand := range q {
		if cand == w {
			s.queues[w.class] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

func (s *Scheduler) queuedLocked() int {
	n := 0
	for c := 0; c < NumClasses; c++ {
		n += len(s.queues[c])
	}
	return n
}

func (s *Scheduler) depthChangedLocked(cl Class) {
	if s.cfg.OnDepth != nil {
		s.cfg.OnDepth(cl, len(s.queues[cl]))
	}
}

// revokeLeasesLocked cancels every outstanding idle lease so pre-warm
// work aborts and its slots come back for real traffic.
func (s *Scheduler) revokeLeasesLocked() {
	for l := range s.leases {
		l.cancel()
	}
}

// ---- idle leases (speculative pre-warm) --------------------------------

type idleLease struct {
	cancel context.CancelFunc
}

// AcquireIdle claims a worker slot for background pre-warm work, but
// only when the scheduler is completely idle: a free slot exists and no
// real request is queued.  It never blocks — ok=false means "the pool
// is busy, come back later".  The returned context is cancelled the
// moment a real request has to queue, so lease holders must run their
// work under it and treat cancellation as "yield now".  release is
// idempotent and must be called when the work ends either way.
func (s *Scheduler) AcquireIdle(ctx context.Context) (lease context.Context, release func(), ok bool) {
	if s == nil {
		return ctx, func() {}, true
	}
	select {
	case <-s.cfg.Drain:
		return nil, nil, false
	default:
	}
	s.mu.Lock()
	if s.free == 0 || s.queuedLocked() > 0 {
		s.mu.Unlock()
		return nil, nil, false
	}
	s.free--
	s.idleGrants++
	lctx, cancel := context.WithCancel(ctx)
	l := &idleLease{cancel: cancel}
	s.leases[l] = struct{}{}
	s.mu.Unlock()

	var once sync.Once
	rel := func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.leases, l)
			s.handBackLocked()
			s.mu.Unlock()
			cancel()
		})
	}
	return lctx, rel, true
}

// ---- introspection ------------------------------------------------------

// Depth reports the queued waiters of one class.
func (s *Scheduler) Depth(cl Class) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[cl])
}

// Queued reports the total queued waiters across classes.
func (s *Scheduler) Queued() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked()
}

// Shed reports how many class-cl requests were refused with overload.
func (s *Scheduler) Shed(cl Class) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed[cl]
}

// Dispatched reports how many class-cl requests were granted a slot.
func (s *Scheduler) Dispatched(cl Class) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatched[cl]
}

// IdleGrants reports how many pre-warm leases were ever granted.
func (s *Scheduler) IdleGrants() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idleGrants
}
