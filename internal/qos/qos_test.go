package qos

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

func TestParseClassTable(t *testing.T) {
	cases := []struct {
		in   string
		def  Class
		want Class
	}{
		{"interactive", Batch, Interactive},
		{"batch", Interactive, Batch},
		{"  Batch \t", Interactive, Batch},
		{"INTERACTIVE", Batch, Interactive},
		{"", Interactive, Interactive},
		{"", Batch, Batch},
		{"garbage", Interactive, Interactive},
		{"garbage", Batch, Batch},
		{"high", Batch, Batch},
		{"0", Interactive, Interactive},
		{"🦄", Batch, Batch},
		{"batch\x00", Interactive, Interactive},
	}
	for _, c := range cases {
		if got := ParseClass(c.in, c.def); got != c.want {
			t.Errorf("ParseClass(%q, %v) = %v, want %v", c.in, c.def, got, c.want)
		}
	}
}

func FuzzParseClass(f *testing.F) {
	for _, s := range []string{"", "interactive", "batch", "Batch", "BATCH ", "garbage", "high", "🦄", "batch,interactive", "\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Whatever the input, the result is a valid class and the
		// function is deterministic — a bad header can never escalate
		// into an error path.
		got := ParseClass(s, Batch)
		if got != Interactive && got != Batch {
			t.Fatalf("ParseClass(%q) = %v: not a valid class", s, got)
		}
		if again := ParseClass(s, Batch); again != got {
			t.Fatalf("ParseClass(%q) nondeterministic: %v then %v", s, got, again)
		}
		// The two canonical names parse regardless of default.
		if ParseClass(s, Interactive) != ParseClass(s, Batch) {
			lower := ParseClass(s, Interactive)
			if lower != Interactive {
				t.Fatalf("ParseClass(%q) depends on default yet is not the default: %v", s, lower)
			}
		}
	})
}

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("")
	if err != nil || w != DefaultWeights {
		t.Fatalf("empty spec: got %v, %v", w, err)
	}
	w, err = ParseWeights("interactive=5,batch=2")
	if err != nil || w[Interactive] != 5 || w[Batch] != 2 {
		t.Fatalf("got %v, %v", w, err)
	}
	w, err = ParseWeights(" Batch=3 ")
	if err != nil || w[Batch] != 3 || w[Interactive] != DefaultWeights[Interactive] {
		t.Fatalf("partial spec: got %v, %v", w, err)
	}
	for _, bad := range []string{"interactive", "interactive=0", "batch=-1", "batch=x", "urgent=2"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q): want error", bad)
		}
	}
}

func TestNilSchedulerAdmitsEverything(t *testing.T) {
	var s *Scheduler
	release, err := s.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatalf("nil scheduler refused: %v", err)
	}
	release()
	if _, rel, ok := s.AcquireIdle(context.Background()); !ok {
		t.Fatal("nil scheduler refused idle lease")
	} else {
		rel()
	}
	if s.Depth(Batch) != 0 || s.Shed(Batch) != 0 {
		t.Fatal("nil scheduler has state")
	}
}

func TestSchedulerImmediateGrantAndRelease(t *testing.T) {
	s := NewScheduler(Config{Capacity: 2})
	r1, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r1() // idempotent
	r2()
	if got := s.Dispatched(Interactive) + s.Dispatched(Batch); got != 2 {
		t.Fatalf("dispatched = %d, want 2", got)
	}
	// All slots back: another acquire succeeds immediately.
	r3, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

// occupy claims every slot and returns a func releasing them all.
func occupy(t *testing.T, s *Scheduler, n int) func() {
	t.Helper()
	rels := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		r, err := s.Acquire(context.Background(), Interactive)
		if err != nil {
			t.Fatalf("occupy slot %d: %v", i, err)
		}
		rels = append(rels, r)
	}
	return func() {
		for _, r := range rels {
			r()
		}
	}
}

func TestSchedulerWeightedDispatchOrder(t *testing.T) {
	s := NewScheduler(Config{Capacity: 1, Weights: [NumClasses]int{Interactive: 2, Batch: 1}})
	free := occupy(t, s, 1)

	// Queue 4 interactive and 2 batch waiters, then hand the slot back:
	// each grant's release chains the next, so the grant order is the
	// dispatcher's order.  Enqueue deterministically by waiting until
	// each waiter is visibly queued.
	var mu sync.Mutex
	var order []Class
	var wg sync.WaitGroup
	add := func(cl Class, wantDepth int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.Acquire(context.Background(), cl)
			if err != nil {
				t.Errorf("acquire %v: %v", cl, err)
				return
			}
			mu.Lock()
			order = append(order, cl)
			mu.Unlock()
			rel()
		}()
		waitFor(t, func() bool { return s.Depth(cl) >= wantDepth })
	}
	add(Interactive, 1)
	add(Interactive, 2)
	add(Interactive, 3)
	add(Interactive, 4)
	add(Batch, 1)
	add(Batch, 2)

	free() // hand the slot back; each waiter's release chains the next
	wg.Wait()

	// Smooth WRR at 2:1 interleaves rather than bursting: I B I I B I —
	// interactive gets its 2/3 share and batch is never starved.
	want := []Class{Interactive, Batch, Interactive, Interactive, Batch, Interactive}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("got %d grants, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerBatchShedFirst(t *testing.T) {
	s := NewScheduler(Config{Capacity: 1, MaxQueue: 2})
	free := occupy(t, s, 1)
	defer free()

	// Fill the queue with two batch waiters.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := s.Acquire(context.Background(), Batch)
			if err == nil {
				rel()
			}
			errs <- err
		}()
	}
	waitFor(t, func() bool { return s.Depth(Batch) == 2 })

	// A batch arrival on a full queue is shed outright.
	if _, err := s.Acquire(context.Background(), Batch); err == nil {
		t.Fatal("batch arrival on full queue: want overload")
	} else {
		var ov *resilience.OverloadError
		if !errors.As(err, &ov) {
			t.Fatalf("want OverloadError, got %T: %v", err, err)
		}
	}
	if got := s.Shed(Batch); got != 1 {
		t.Fatalf("batch sheds = %d, want 1", got)
	}

	// An interactive arrival displaces the NEWEST queued batch waiter.
	done := make(chan struct{})
	go func() {
		rel, err := s.Acquire(context.Background(), Interactive)
		if err != nil {
			t.Errorf("interactive displaced instead of admitted: %v", err)
		} else {
			rel()
		}
		close(done)
	}()
	// One of the queued batch acquires comes back shed.
	select {
	case err := <-errs:
		var ov *resilience.OverloadError
		if !errors.As(err, &ov) {
			t.Fatalf("evicted batch waiter: want OverloadError, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no batch waiter was evicted")
	}
	if got := s.Shed(Batch); got != 2 {
		t.Fatalf("batch sheds = %d, want 2", got)
	}
	if got := s.Shed(Interactive); got != 0 {
		t.Fatalf("interactive sheds = %d, want 0", got)
	}
	waitFor(t, func() bool { return s.Depth(Interactive) == 1 })

	// Queue now holds one batch + one interactive; an interactive
	// arrival evicts the remaining batch waiter, and the NEXT
	// interactive arrival (all-interactive queue) is shed itself.
	go func() {
		rel, err := s.Acquire(context.Background(), Interactive)
		if err == nil {
			rel()
		}
	}()
	select {
	case err := <-errs:
		var ov *resilience.OverloadError
		if !errors.As(err, &ov) {
			t.Fatalf("second eviction: want OverloadError, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second batch waiter not evicted")
	}
	waitFor(t, func() bool { return s.Depth(Interactive) == 2 })
	_, err := s.Acquire(context.Background(), Interactive)
	var ov *resilience.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("interactive on all-interactive full queue: want OverloadError, got %v", err)
	}
	if got := s.Shed(Interactive); got != 1 {
		t.Fatalf("interactive sheds = %d, want 1", got)
	}
	// Retry-After hints are per-class.
	if ov.After != DefaultRetryAfter[Interactive] {
		t.Fatalf("interactive Retry-After = %v, want %v", ov.After, DefaultRetryAfter[Interactive])
	}

	free() // let the queued waiters drain
	<-done
}

func TestSchedulerDrainReleasesWaiters(t *testing.T) {
	drain := make(chan struct{})
	s := NewScheduler(Config{Capacity: 1, Drain: drain})
	free := occupy(t, s, 1)
	defer free()

	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(context.Background(), Interactive)
		errc <- err
	}()
	waitFor(t, func() bool { return s.Depth(Interactive) == 1 })
	close(drain)
	err := <-errc
	if !resilience.IsDraining(err) {
		t.Fatalf("drained waiter: want DrainingError, got %v", err)
	}
	// New arrivals are refused outright.
	if _, err := s.Acquire(context.Background(), Batch); !resilience.IsDraining(err) {
		t.Fatalf("post-drain arrival: want DrainingError, got %v", err)
	}
	// And no idle leases during drain.
	if _, _, ok := s.AcquireIdle(context.Background()); ok {
		t.Fatal("idle lease granted during drain")
	}
}

func TestSchedulerContextCancelWhileQueued(t *testing.T) {
	s := NewScheduler(Config{Capacity: 1})
	free := occupy(t, s, 1)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Batch)
		errc <- err
	}()
	waitFor(t, func() bool { return s.Depth(Batch) == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitFor(t, func() bool { return s.Queued() == 0 })

	// The pool is intact: release and re-acquire works.
	free()
	rel, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestSchedulerIdleLeaseYieldsToRealTraffic(t *testing.T) {
	s := NewScheduler(Config{Capacity: 1})

	lease, release, ok := s.AcquireIdle(context.Background())
	if !ok {
		t.Fatal("idle pool refused a lease")
	}
	if s.IdleGrants() != 1 {
		t.Fatalf("idle grants = %d, want 1", s.IdleGrants())
	}
	// Pool fully claimed by the lease: a second lease is refused.
	if _, _, ok := s.AcquireIdle(context.Background()); ok {
		t.Fatal("second lease granted over a full pool")
	}

	// A real request queues → the lease context is cancelled.
	got := make(chan error, 1)
	go func() {
		rel, err := s.Acquire(context.Background(), Interactive)
		if err == nil {
			rel()
		}
		got <- err
	}()
	select {
	case <-lease.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("lease not revoked by real arrival")
	}
	release() // the pre-warm work aborts and frees the slot
	if err := <-got; err != nil {
		t.Fatalf("real request after yield: %v", err)
	}

	// With traffic gone the next lease is granted again.
	_, release2, ok := s.AcquireIdle(context.Background())
	if !ok {
		t.Fatal("lease refused on idle pool after yield")
	}
	release2()
}

func TestSchedulerIdleLeaseRefusedWhenBusy(t *testing.T) {
	s := NewScheduler(Config{Capacity: 2})
	free := occupy(t, s, 1)
	defer free()
	// One slot busy with real work, one free, nobody queued: idle work
	// may still use the spare slot.
	_, release, ok := s.AcquireIdle(context.Background())
	if !ok {
		t.Fatal("lease refused with a free slot and empty queue")
	}
	release()
	free2 := occupy(t, s, 1)
	defer free2()
	// Now both slots are real work: no lease.
	if _, _, ok := s.AcquireIdle(context.Background()); ok {
		t.Fatal("lease granted with zero free slots")
	}
}

func TestSchedulerConcurrentChurn(t *testing.T) {
	// Hammer the scheduler from many goroutines under -race: every
	// grant must be released, and the pool must end intact.
	s := NewScheduler(Config{Capacity: 4, MaxQueue: 8})
	var granted, refused atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		cl := Interactive
		if i%2 == 0 {
			cl = Batch
		}
		wg.Add(1)
		go func(cl Class) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				rel, err := s.Acquire(ctx, cl)
				if err == nil {
					granted.Add(1)
					time.Sleep(time.Microsecond)
					rel()
				} else {
					refused.Add(1)
				}
				cancel()
			}
		}(cl)
	}
	// Interleave pre-warm leases with the storm.
	stop := make(chan struct{})
	var lwg sync.WaitGroup
	lwg.Add(1)
	go func() {
		defer lwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if lease, rel, ok := s.AcquireIdle(context.Background()); ok {
				select {
				case <-lease.Done():
				case <-time.After(time.Microsecond):
				}
				rel()
			}
		}
	}()
	wg.Wait()
	close(stop)
	lwg.Wait()
	if granted.Load() == 0 {
		t.Fatal("storm granted nothing")
	}
	// Pool intact: all four slots acquirable.
	free := occupy(t, s, 4)
	free()
	if s.Queued() != 0 {
		t.Fatalf("queue not empty after storm: %d", s.Queued())
	}
}

func TestCoalescerLeaderAndFollowers(t *testing.T) {
	var c Coalescer
	var calls atomic.Uint64
	gate := make(chan struct{})
	running := make(chan struct{})

	const followers = 5
	results := make(chan string, followers+1)
	shareds := make(chan bool, followers+1)
	launch := func() {
		v, shared, err := c.Do(context.Background(), "k", func() (interface{}, error) {
			calls.Add(1)
			close(running)
			<-gate
			return "payload", nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		results <- v.(string)
		shareds <- shared
	}
	go launch()
	<-running // leader is inside fn
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := c.Do(context.Background(), "k", func() (interface{}, error) {
				calls.Add(1)
				return "wrong", nil
			})
			if err != nil {
				t.Errorf("follower: %v", err)
			}
			results <- v.(string)
			shareds <- shared
		}()
	}
	waitFor(t, func() bool { return c.Merged() == followers })
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < followers+1; i++ {
		if v := <-results; v != "payload" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
	sharedCount := 0
	for i := 0; i < followers+1; i++ {
		if <-shareds {
			sharedCount++
		}
	}
	if sharedCount != followers {
		t.Fatalf("shared count = %d, want %d", sharedCount, followers)
	}
	if c.Merged() != followers {
		t.Fatalf("Merged = %d, want %d", c.Merged(), followers)
	}

	// The flight is gone: the next call is a fresh leader.
	v, shared, err := c.Do(context.Background(), "k", func() (interface{}, error) { return "fresh", nil })
	if err != nil || shared || v.(string) != "fresh" {
		t.Fatalf("post-flight call: %v %v %v", v, shared, err)
	}
}

func TestCoalescerFollowerContextCancel(t *testing.T) {
	var c Coalescer
	gate := make(chan struct{})
	running := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (interface{}, error) {
			close(running)
			<-gate
			return "late", nil
		})
	}()
	<-running
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := c.Do(ctx, "k", func() (interface{}, error) { return "never", nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: shared=%v err=%v", shared, err)
	}
	close(gate)
}

func TestCoalescerNilAndDistinctKeys(t *testing.T) {
	var nilC *Coalescer
	v, shared, err := nilC.Do(context.Background(), "k", func() (interface{}, error) { return 7, nil })
	if err != nil || shared || v.(int) != 7 {
		t.Fatalf("nil coalescer: %v %v %v", v, shared, err)
	}
	if nilC.Merged() != 0 {
		t.Fatal("nil coalescer counted a merge")
	}
	// Distinct keys never coalesce.
	var c Coalescer
	a, _, _ := c.Do(context.Background(), "a", func() (interface{}, error) { return "a", nil })
	b, _, _ := c.Do(context.Background(), "b", func() (interface{}, error) { return "b", nil })
	if a.(string) != "a" || b.(string) != "b" {
		t.Fatal("distinct keys shared a flight")
	}
}

func TestPopularityDecayAndOrder(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	p := NewPopularity(time.Minute, 0, clock)

	p.Touch("a", "srcA")
	p.Touch("a", "")
	p.Touch("a", "")
	p.Touch("b", "srcB")

	top := p.Top(10)
	if len(top) != 2 || top[0].Key != "a" || top[1].Key != "b" {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Source != "srcA" || top[1].Source != "srcB" {
		t.Fatalf("sources lost: %+v", top)
	}
	if top[0].Score != 3 || top[1].Score != 1 {
		t.Fatalf("scores = %v, %v", top[0].Score, top[1].Score)
	}

	// Two half-lives later a's score is 0.75; one fresh touch on b (1.75)
	// overtakes it.
	now = now.Add(2 * time.Minute)
	p.Touch("b", "")
	top = p.Top(1)
	if len(top) != 1 || top[0].Key != "b" {
		t.Fatalf("after decay top = %+v", top)
	}

	// Top(n) truncates; empty source never clobbers a remembered one.
	if got := p.Top(1); len(got) != 1 {
		t.Fatalf("Top(1) returned %d", len(got))
	}
	all := p.Top(10)
	for _, hk := range all {
		if hk.Key == "b" && hk.Source != "srcB" {
			t.Fatalf("b lost its source: %+v", hk)
		}
	}
}

func TestPopularityBoundedEviction(t *testing.T) {
	now := time.Unix(0, 0)
	p := NewPopularity(time.Minute, 3, func() time.Time { return now })
	p.Touch("hot", "")
	p.Touch("hot", "")
	p.Touch("warm", "")
	p.Touch("warm", "")
	p.Touch("cold", "")
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	p.Touch("new", "") // 4th entry: the coldest ("cold" or "new", both score 1; largest key evicts)
	if p.Len() != 3 {
		t.Fatalf("after eviction len = %d", p.Len())
	}
	for _, hk := range p.Top(10) {
		if hk.Key == "new" {
			t.Fatalf("tie eviction dropped the wrong key: %+v", p.Top(10))
		}
	}
}

func TestPopularityNilSafe(t *testing.T) {
	var p *Popularity
	p.Touch("k", "src")
	if p.Top(5) != nil || p.Len() != 0 {
		t.Fatal("nil popularity has state")
	}
}

func TestPrewarmerSweep(t *testing.T) {
	now := time.Unix(0, 0)
	pop := NewPopularity(time.Minute, 0, func() time.Time { return now })
	pop.Touch("hot", "srcH")
	pop.Touch("hot", "")
	pop.Touch("cool", "srcC")

	sched := NewScheduler(Config{Capacity: 2})
	warm := map[string]bool{"cool": true}
	var mu sync.Mutex
	var warmedKeys []string
	pw := &Prewarmer{
		Sched:  sched,
		Pop:    pop,
		Top:    4,
		IsWarm: func(k string) bool { mu.Lock(); defer mu.Unlock(); return warm[k] },
		Warm: func(ctx context.Context, key, source string) error {
			mu.Lock()
			defer mu.Unlock()
			if key == "hot" && source != "srcH" {
				t.Errorf("hot warmed with source %q", source)
			}
			warm[key] = true
			warmedKeys = append(warmedKeys, key)
			return nil
		},
	}
	if n := pw.Sweep(context.Background()); n != 1 {
		t.Fatalf("sweep warmed %d, want 1 (cool already warm)", n)
	}
	mu.Lock()
	if len(warmedKeys) != 1 || warmedKeys[0] != "hot" {
		t.Fatalf("warmed %v", warmedKeys)
	}
	mu.Unlock()
	// Second sweep: everything warm, nothing to do.
	if n := pw.Sweep(context.Background()); n != 0 {
		t.Fatalf("idempotent sweep warmed %d", n)
	}
	sweeps, warmed, yields, errs := pw.Stats()
	if sweeps != 2 || warmed != 1 || yields != 0 || errs != 0 {
		t.Fatalf("stats = %d %d %d %d", sweeps, warmed, yields, errs)
	}
}

func TestPrewarmerSkipsBusyPool(t *testing.T) {
	pop := NewPopularity(0, 0, nil)
	pop.Touch("k", "src")
	sched := NewScheduler(Config{Capacity: 1})
	free := occupy(t, sched, 1)
	defer free()
	pw := &Prewarmer{
		Sched: sched,
		Pop:   pop,
		Warm: func(ctx context.Context, key, source string) error {
			t.Error("warm ran on a busy pool")
			return nil
		},
	}
	if n := pw.Sweep(context.Background()); n != 0 {
		t.Fatalf("busy sweep warmed %d", n)
	}
}

func TestPrewarmerYieldStopsSweep(t *testing.T) {
	pop := NewPopularity(0, 0, nil)
	pop.Touch("k1", "s")
	pop.Touch("k2", "s")
	sched := NewScheduler(Config{Capacity: 1})
	pw := &Prewarmer{
		Sched: sched,
		Pop:   pop,
		Warm: func(ctx context.Context, key, source string) error {
			// Simulate a real arrival mid-warm: queue a request, which
			// revokes this lease, then honor the cancellation.
			done := make(chan error, 1)
			go func() {
				rel, err := sched.Acquire(context.Background(), Interactive)
				if err == nil {
					rel()
				}
				done <- err
			}()
			<-ctx.Done()
			go func() { <-done }()
			return ctx.Err()
		},
	}
	if n := pw.Sweep(context.Background()); n != 0 {
		t.Fatalf("yielding sweep warmed %d", n)
	}
	_, _, yields, errs := pw.Stats()
	if yields != 1 || errs != 0 {
		t.Fatalf("yields=%d errs=%d, want 1, 0", yields, errs)
	}
}

func TestPrewarmerErrorCounted(t *testing.T) {
	pop := NewPopularity(0, 0, nil)
	pop.Touch("bad", "s")
	pw := &Prewarmer{
		Sched: NewScheduler(Config{Capacity: 1}),
		Pop:   pop,
		Warm: func(ctx context.Context, key, source string) error {
			return errors.New("boom")
		},
	}
	if n := pw.Sweep(context.Background()); n != 0 {
		t.Fatalf("failing sweep warmed %d", n)
	}
	_, _, yields, errs := pw.Stats()
	if errs != 1 || yields != 0 {
		t.Fatalf("errs=%d yields=%d, want 1, 0", errs, yields)
	}
}
