package qos

import (
	"context"
	"sync"
	"sync/atomic"
)

// flight is one in-progress leader call; followers wait on done.
type cflight struct {
	done chan struct{}
	val  interface{}
	err  error
}

// Coalescer merges concurrent duplicate requests: the first caller for
// a key (the leader) runs fn; every caller that arrives while the
// leader is still working (a follower) waits and receives the leader's
// exact result.  Unlike the retarget singleflight in internal/rcache,
// the coalesced value here is the full response — recordd uses it to
// collapse a thundering herd of identical (model, program) compiles
// into one compile whose bytes fan out to every waiter.
//
// Followers are released by their own context: a follower whose client
// disconnects stops waiting without affecting the leader.  A nil
// *Coalescer runs every call itself (coalescing off).
type Coalescer struct {
	mu      sync.Mutex
	flights map[string]*cflight
	merged  atomic.Uint64
}

// Do runs fn for key, or joins an in-progress call for the same key.
// shared reports whether the result came from another caller's run —
// the caller's own fn never executed.  On a follower whose ctx ends
// first, Do returns (nil, true, ctx.Err()).
func (c *Coalescer) Do(ctx context.Context, key string, fn func() (interface{}, error)) (v interface{}, shared bool, err error) {
	if c == nil {
		v, err = fn()
		return v, false, err
	}
	c.mu.Lock()
	if c.flights == nil {
		c.flights = make(map[string]*cflight)
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.merged.Add(1)
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &cflight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Merged reports how many calls were answered from another caller's
// run (followers, whether or not their wait completed).
func (c *Coalescer) Merged() uint64 {
	if c == nil {
		return 0
	}
	return c.merged.Load()
}
