package qos

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// popEntry is one tracked key: an exponentially-decayed hit score and
// the model source that can rebuild it if the artifact is gone.
type popEntry struct {
	score float64
	stamp time.Time
	src   string
}

// Popularity tracks decayed per-model-key hit counts.  Every served
// request Touches its key; scores halve every half-life, so a model
// that was hot an hour ago and silent since drops off the pre-warm
// list by itself.  A nil *Popularity forgets everything.
type Popularity struct {
	mu       sync.Mutex
	halfLife time.Duration
	max      int
	now      func() time.Time
	entries  map[string]*popEntry
}

// HotKey is one entry of Popularity.Top: a model's artifact key, the
// MDL source it was last requested with (empty for by-key requests),
// and its decayed score at the time of the call.
type HotKey struct {
	Key    string
	Source string
	Score  float64
}

// NewPopularity builds a tracker.  halfLife defaults to 10 minutes,
// max (the entry bound; lowest-score entries are evicted beyond it) to
// 256, and now to time.Now — now is injectable so tests can step decay
// deterministically.
func NewPopularity(halfLife time.Duration, max int, now func() time.Time) *Popularity {
	if halfLife <= 0 {
		halfLife = 10 * time.Minute
	}
	if max <= 0 {
		max = 256
	}
	if now == nil {
		now = time.Now
	}
	return &Popularity{
		halfLife: halfLife,
		max:      max,
		now:      now,
		entries:  make(map[string]*popEntry),
	}
}

// decayLocked brings e's score forward to t.
func (p *Popularity) decayLocked(e *popEntry, t time.Time) {
	if dt := t.Sub(e.stamp); dt > 0 {
		e.score *= math.Exp2(-float64(dt) / float64(p.halfLife))
		e.stamp = t
	}
}

// Touch records one hit for key.  A non-empty source is remembered so
// the pre-warmer can re-retarget the model even after its artifact was
// evicted from every tier; an empty source keeps whatever was known.
func (p *Popularity) Touch(key, source string) {
	if p == nil || key == "" {
		return
	}
	t := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[key]
	if e == nil {
		e = &popEntry{stamp: t}
		p.entries[key] = e
	}
	p.decayLocked(e, t)
	e.score++
	if source != "" {
		e.src = source
	}
	if len(p.entries) > p.max {
		p.evictColdestLocked(t)
	}
}

// evictColdestLocked drops the lowest-score entry (ties: largest key,
// for determinism).
func (p *Popularity) evictColdestLocked(t time.Time) {
	var victim string
	worst := math.Inf(1)
	for k, e := range p.entries {
		p.decayLocked(e, t)
		if e.score < worst || (e.score == worst && k > victim) {
			worst, victim = e.score, k
		}
	}
	if victim != "" {
		delete(p.entries, victim)
	}
}

// Top returns the n hottest keys by decayed score, descending (ties by
// key, ascending, so the order is deterministic).
func (p *Popularity) Top(n int) []HotKey {
	if p == nil || n <= 0 {
		return nil
	}
	t := p.now()
	p.mu.Lock()
	hot := make([]HotKey, 0, len(p.entries))
	for k, e := range p.entries {
		p.decayLocked(e, t)
		hot = append(hot, HotKey{Key: k, Source: e.src, Score: e.score})
	}
	p.mu.Unlock()
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Score != hot[j].Score {
			return hot[i].Score > hot[j].Score
		}
		return hot[i].Key < hot[j].Key
	})
	if len(hot) > n {
		hot = hot[:n]
	}
	return hot
}

// Len reports the tracked entry count.
func (p *Popularity) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Prewarmer drives speculative pre-warm: each Sweep asks the
// Popularity tracker for the hottest keys and, for every one not
// already warm, claims an idle-only slot lease from the Scheduler and
// runs Warm under the lease context.  Real traffic always wins — a
// busy pool skips the sweep, and an arriving request cancels the lease
// context mid-Warm (counted as a yield, not an error).
type Prewarmer struct {
	Sched *Scheduler
	Pop   *Popularity
	// Top is how many hot keys one sweep considers (default 4).
	Top int
	// IsWarm reports whether key already sits in the memory tier; warm
	// keys are skipped without taking a lease.
	IsWarm func(key string) bool
	// Warm loads one key into the memory tier (decode from disk/peer,
	// or retarget from source).  It must honor ctx cancellation.
	Warm func(ctx context.Context, key, source string) error

	sweeps, warmed, yields, errs atomic.Uint64
}

// Sweep makes one pre-warm pass and reports how many keys were warmed.
// It never blocks real traffic: the first unavailable idle lease ends
// the sweep.
func (p *Prewarmer) Sweep(ctx context.Context) int {
	if p == nil || p.Pop == nil || p.Warm == nil {
		return 0
	}
	p.sweeps.Add(1)
	top := p.Top
	if top <= 0 {
		top = 4
	}
	n := 0
	for _, hk := range p.Pop.Top(top) {
		if ctx.Err() != nil {
			break
		}
		if p.IsWarm != nil && p.IsWarm(hk.Key) {
			continue
		}
		lease, release, ok := p.Sched.AcquireIdle(ctx)
		if !ok {
			break // pool busy: real traffic owns every slot
		}
		err := p.Warm(lease, hk.Key, hk.Source)
		yielded := lease.Err() != nil && ctx.Err() == nil
		release()
		switch {
		case err == nil:
			n++
			p.warmed.Add(1)
		case yielded:
			p.yields.Add(1)
			return n // a real request arrived: get out of its way
		default:
			p.errs.Add(1)
		}
	}
	return n
}

// Run sweeps on every interval tick until ctx ends.
func (p *Prewarmer) Run(ctx context.Context, interval time.Duration) {
	if p == nil {
		return
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.Sweep(ctx)
		}
	}
}

// Stats reports lifetime sweep counters: sweeps run, keys warmed,
// yields to real traffic, and warm errors.
func (p *Prewarmer) Stats() (sweeps, warmed, yields, errs uint64) {
	if p == nil {
		return 0, 0, 0, 0
	}
	return p.sweeps.Load(), p.warmed.Load(), p.yields.Load(), p.errs.Load()
}
