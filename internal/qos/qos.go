// Package qos differentiates recordd traffic: priority classes with
// weighted admission (interactive vs. batch), duplicate-request
// coalescing, and speculative pre-warm of hot models during idle
// capacity.
//
// The package is stdlib-only and nil-safe in the style of diag, obs and
// resilience: a nil *Scheduler admits everything immediately, a nil
// *Coalescer runs every call, a nil *Popularity forgets everything — so
// callers thread QoS through unconditionally and flip it on by
// constructing the pieces.
//
// Refusals are typed with internal/resilience errors (OverloadError,
// DrainingError), so the HTTP status mapping, Retry-After hints and the
// wire "kind" field behave identically whether a request was shed by the
// old uniform admission or by a class queue.
package qos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Class is a request priority class.  The zero value is Interactive, so
// an unclassified request is never accidentally demoted.
type Class uint8

const (
	// Interactive is latency-sensitive traffic: a developer waiting on
	// one compile.  Default for /v1/retarget and /v1/compile.
	Interactive Class = iota
	// Batch is throughput traffic: sweeps over the model × kernel
	// matrix.  Default for /v1/compile-batch; always shed first.
	Batch
	// NumClasses sizes per-class arrays.
	NumClasses = 2
)

// Classes lists every class in priority order, for ranging metrics.
var Classes = [NumClasses]Class{Interactive, Batch}

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// ParseClass maps a client-declared priority string onto a Class.
// Matching is case-insensitive and whitespace-tolerant; anything
// unrecognized — empty, garbage, emoji — degrades to the route default
// def.  It never fails: a bad header must never turn into a 4xx/5xx.
func ParseClass(s string, def Class) Class {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "interactive":
		return Interactive
	case "batch":
		return Batch
	}
	return def
}

// DefaultWeights is the dispatch weighting when none is configured:
// eight interactive grants for every batch grant under contention.
var DefaultWeights = [NumClasses]int{Interactive: 8, Batch: 1}

// DefaultRetryAfter is the per-class Retry-After hint attached to sheds:
// batch callers are told to back off harder than interactive ones.
var DefaultRetryAfter = [NumClasses]time.Duration{
	Interactive: time.Second,
	Batch:       2 * time.Second,
}

// ParseWeights parses a "-qos-weights" style spec: comma-separated
// class=weight pairs, e.g. "interactive=8,batch=1".  Omitted classes
// keep their DefaultWeights value; an empty spec is the defaults.
// Weights must be positive integers.
func ParseWeights(spec string) ([NumClasses]int, error) {
	w := DefaultWeights
	if strings.TrimSpace(spec) == "" {
		return w, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, val, ok := strings.Cut(item, "=")
		if !ok {
			return w, fmt.Errorf("qos: weight %q is not class=weight", item)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return w, fmt.Errorf("qos: weight %q must be a positive integer", item)
		}
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "interactive":
			w[Interactive] = n
		case "batch":
			w[Batch] = n
		default:
			return w, fmt.Errorf("qos: unknown class %q (want interactive or batch)", name)
		}
	}
	return w, nil
}
