package sim

import (
	"strings"
	"testing"

	"repro/internal/hdl"
	"repro/internal/netlist"
)

const machine = `
PROCESSOR simtest;
CONST WORD = 8;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 2; OUT y: WORD);
BEGIN
  y <- CASE op OF 0: a + b; 1: a - b; 2: a & b; 3: b; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 4; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [16];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 4; OUT q: 16);
VAR m: 16 [16];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;

PORT OUT obs : WORD;

PARTS
  alu  : Alu;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a   <- acc.q;
  alu.b   <- ram.q;
  alu.op  <- imem.q[15:14];
  acc.d   <- alu.y;
  acc.ld  <- imem.q[13];
  ram.a   <- imem.q[3:0];
  ram.d   <- acc.q;
  ram.w   <- imem.q[12];
  imem.a  <- pc.q;
  pinc.a  <- pc.q;
  pc.d    <- pinc.y;
  obs     <- acc.q;
END.
`

// Instruction builder for the test machine.
func insn(op uint64, ld, w bool, addr uint64) uint64 {
	word := op<<14 | addr&0xF
	if ld {
		word |= 1 << 13
	}
	if w {
		word |= 1 << 12
	}
	return word
}

func newSim(t *testing.T) *Simulator {
	t.Helper()
	m, err := hdl.ParseAndCheck(machine)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	return New(n)
}

func TestStepExecution(t *testing.T) {
	s := newSim(t)
	if err := s.SetMemory("ram.m", []int64{5, 7}); err != nil {
		t.Fatal(err)
	}
	// acc := 0 + ram[0]; acc := acc + ram[1]; ram[2] := acc.
	prog := []uint64{
		insn(3, true, false, 0), // acc := ram[0]
		insn(0, true, false, 1), // acc := acc + ram[1]
		insn(0, false, true, 2), // ram[2] := acc (op add irrelevant, no ld)
	}
	if err := s.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem["acc.r"][0]; got != 12 {
		t.Errorf("acc = %d", got)
	}
	if got := s.Mem["ram.m"][2]; got != 12 {
		t.Errorf("ram[2] = %d", got)
	}
	if s.PC() != 3 {
		t.Errorf("pc = %d", s.PC())
	}
	if s.Cycle != 3 {
		t.Errorf("cycle = %d", s.Cycle)
	}
}

func TestSubtractWraps(t *testing.T) {
	s := newSim(t)
	if err := s.SetMemory("ram.m", []int64{3}); err != nil {
		t.Fatal(err)
	}
	// acc := ram[0]; acc := acc - ram[0]; acc := acc - ram[0] -> -3 wrapped.
	prog := []uint64{
		insn(3, true, false, 0),
		insn(1, true, false, 0),
		insn(1, true, false, 0),
	}
	if err := s.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem["acc.r"][0]; got != -3 {
		t.Errorf("acc = %d, want -3", got)
	}
}

func TestPrimaryOutput(t *testing.T) {
	s := newSim(t)
	if err := s.SetMemory("acc.r", []int64{42}); err != nil {
		t.Fatal(err)
	}
	v, err := s.OutVal("obs")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("obs = %d", v)
	}
	if _, err := s.OutVal("nope"); err == nil {
		t.Error("unknown output accepted")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	s := newSim(t)
	long := make([]uint64, 100)
	if err := s.LoadProgram(long); err == nil {
		t.Error("oversized program accepted")
	}
	if err := s.SetMemory("ghost", []int64{1}); err == nil {
		t.Error("unknown storage accepted")
	}
	if err := s.SetMemory("ram.m", make([]int64, 99)); err == nil {
		t.Error("oversized image accepted")
	}
}

const busMachine = `
PROCESSOR bussim;
MODULE Reg (IN d: 8; IN ld: 1; OUT q: 8);
VAR r: 8;
BEGIN q <- r; AT ld == 1 DO r <- d; END;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
BUS db : 8;
PARTS
  r0 : Reg; r1 : Reg; dst : Reg;
  imem : Rom INSTRUCTION; pc : PcReg PC; pinc : Inc;
CONNECT
  db <- r0.q WHEN imem.q[7] == 1;
  db <- r1.q WHEN imem.q[6] == 1;
  dst.d <- db;
  dst.ld <- imem.q[5];
  r0.d <- db;
  r0.ld <- imem.q[4];
  r1.d <- db;
  r1.ld <- imem.q[3];
  imem.a <- pc.q;
  pinc.a <- pc.q;
  pc.d <- pinc.y;
END.
`

func newBusSim(t *testing.T) *Simulator {
	t.Helper()
	m, err := hdl.ParseAndCheck(busMachine)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	return New(n)
}

func TestBusTransfer(t *testing.T) {
	s := newBusSim(t)
	s.Mem["r0.r"][0] = 55
	// drive r0 onto the bus, load dst: bits 7 and 5.
	if err := s.RunProgram([]uint64{1<<7 | 1<<5}); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem["dst.r"][0]; got != 55 {
		t.Errorf("dst = %d", got)
	}
}

func TestBusContention(t *testing.T) {
	s := newBusSim(t)
	err := s.RunProgram([]uint64{1<<7 | 1<<6 | 1<<5})
	if err == nil || !strings.Contains(err.Error(), "contention") {
		t.Errorf("err = %v", err)
	}
}

func TestBusFloating(t *testing.T) {
	s := newBusSim(t)
	// Load dst from a floating bus.
	err := s.RunProgram([]uint64{1 << 5})
	if err == nil || !strings.Contains(err.Error(), "floating") {
		t.Errorf("err = %v", err)
	}
}

func TestFloatingBusUnconsumedIsFine(t *testing.T) {
	s := newBusSim(t)
	// Nothing enabled, nothing loaded: lazy evaluation never touches the
	// bus, so the cycle succeeds.
	if err := s.RunProgram([]uint64{0}); err != nil {
		t.Fatalf("idle cycle failed: %v", err)
	}
}

const conflictMachine = `
PROCESSOR conflictsim;
MODULE DualW (IN d: 8; IN w1: 1; IN w2: 1; OUT q: 8);
VAR r: 8;
BEGIN
  q <- r;
  AT w1 == 1 DO r <- d;
  AT w2 == 1 DO r <- d + 1;
END;
MODULE Rom (IN a: 4; OUT q: 8);
VAR m: 8 [16];
BEGIN q <- m[a]; END;
MODULE PcReg (IN d: 4; OUT q: 4);
VAR r: 4;
BEGIN q <- r; r <- d; END;
MODULE Inc (IN a: 4; OUT y: 4);
BEGIN y <- a + 1; END;
PARTS
  x : DualW; imem : Rom INSTRUCTION; pc : PcReg PC; pinc : Inc;
CONNECT
  x.d  <- imem.q;
  x.w1 <- imem.q[0];
  x.w2 <- imem.q[1];
  imem.a <- pc.q;
  pinc.a <- pc.q;
  pc.d <- pinc.y;
END.
`

func TestWriteConflictDetected(t *testing.T) {
	m, err := hdl.ParseAndCheck(conflictMachine)
	if err != nil {
		t.Fatal(err)
	}
	n, err := netlist.Elaborate(m)
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	// Enable both guarded writes with different values.
	err = s.RunProgram([]uint64{0x03})
	if err == nil || !strings.Contains(err.Error(), "write conflict") {
		t.Errorf("err = %v", err)
	}
	// A single write works.
	s2 := New(n)
	if err := s2.RunProgram([]uint64{0x01}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Mem["x.r"][0]; got != 1 {
		t.Errorf("x = %d", got)
	}
}
