// Package sim is a cycle-accurate simulator for elaborated netlist models.
//
// Each cycle it evaluates every module behavior over the current storage
// state and interconnect (lazily, with per-cycle memoization), collects all
// guarded storage writes, and commits them simultaneously — the standard
// two-phase RT-level semantics.  Bus contention (multiple active tristate
// drivers), floating buses that are actually consumed, and same-cell write
// conflicts are hard errors: they indicate either a broken model or
// miscompiled/miscompacted code, which is exactly what the end-to-end
// tests use the simulator to detect.
//
// Values use the same canonical two's-complement representation as the IR
// interpreter (rtl.Wrap), so the two sides can be compared cell by cell.
package sim

import (
	"fmt"

	"repro/internal/faultpoint"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/rtl"
)

// Simulator holds the architectural state of one netlist model.
type Simulator struct {
	N *netlist.Netlist
	// Mem maps qualified storage names to cell values (canonical
	// sign-extended representation).
	Mem map[string][]int64
	// In supplies primary input port values.
	In map[string]int64

	Cycle int

	// per-cycle caches
	outCache map[string]int64
	busCache map[string]int64
}

// New builds a simulator with zeroed storage.
func New(n *netlist.Netlist) *Simulator {
	s := &Simulator{
		N:   n,
		Mem: make(map[string][]int64),
		In:  make(map[string]int64),
	}
	for _, st := range n.Seq {
		s.Mem[st.QName()] = make([]int64, st.Size())
	}
	return s
}

// LoadProgram writes instruction words into the instruction memory.
func (s *Simulator) LoadProgram(words []uint64) error {
	insn := s.N.InsnInst
	if insn == nil {
		return fmt.Errorf("sim: model has no instruction memory")
	}
	var storage *netlist.Storage
	for _, st := range s.N.Seq {
		if st.Insn {
			storage = st
		}
	}
	if storage == nil {
		return fmt.Errorf("sim: instruction part has no storage")
	}
	cells := s.Mem[storage.QName()]
	if len(words) > len(cells) {
		return fmt.Errorf("sim: program (%d words) exceeds instruction memory (%d)", len(words), len(cells))
	}
	for i, w := range words {
		cells[i] = rtl.Wrap(int64(w), storage.Width())
	}
	return nil
}

// SetMemory replaces the contents of a storage (prefix of its cells).
func (s *Simulator) SetMemory(qname string, img []int64) error {
	cells, ok := s.Mem[qname]
	if !ok {
		return fmt.Errorf("sim: unknown storage %s", qname)
	}
	if len(img) > len(cells) {
		return fmt.Errorf("sim: image (%d) exceeds storage %s (%d)", len(img), qname, len(cells))
	}
	st := s.N.Storages[qname]
	for i, v := range img {
		cells[i] = rtl.Wrap(v, st.Width())
	}
	return nil
}

// PC returns the current program counter value (unsigned), or -1 when the
// model has no PC part.
func (s *Simulator) PC() int64 {
	if s.N.PCInst == nil {
		return -1
	}
	for _, st := range s.N.Seq {
		if st.PC {
			v := s.Mem[st.QName()][0]
			return int64(uint64(v) & rtl.Mask(st.Width()))
		}
	}
	return -1
}

// write is one pending storage write.
type write struct {
	storage string
	idx     int
	val     int64
	by      string // diagnostic: instance.var
}

// Step executes one machine cycle.
func (s *Simulator) Step() error {
	if err := faultpoint.Hit("sim.step", s.N.Name); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	s.outCache = make(map[string]int64)
	s.busCache = make(map[string]int64)
	var writes []write
	for _, inst := range s.N.Insts {
		for _, st := range inst.Mod.Stmts {
			if st.LHS.Var == nil {
				continue // output port assignments are combinational
			}
			if st.Guard != nil {
				g, err := s.evalMod(inst, st.Guard)
				if err != nil {
					return err
				}
				if g == 0 {
					continue
				}
			}
			val, err := s.evalMod(inst, st.RHS)
			if err != nil {
				return err
			}
			idx := 0
			if st.LHS.Index != nil {
				iv, err := s.evalMod(inst, st.LHS.Index)
				if err != nil {
					return err
				}
				idx = int(uint64(iv) & rtl.Mask(exprWidth(st.LHS.Index)))
			}
			q := inst.Name + "." + st.LHS.Var.Name
			cells := s.Mem[q]
			if idx < 0 || idx >= len(cells) {
				return fmt.Errorf("sim: cycle %d: %s index %d out of range", s.Cycle, q, idx)
			}
			writes = append(writes, write{q, idx, rtl.Wrap(val, st.LHS.Var.Width), q})
		}
	}
	// Conflict check and simultaneous commit.
	seen := make(map[string]int64)
	for _, w := range writes {
		key := fmt.Sprintf("%s[%d]", w.storage, w.idx)
		if prev, dup := seen[key]; dup && prev != w.val {
			return fmt.Errorf("sim: cycle %d: write conflict on %s", s.Cycle, key)
		}
		seen[key] = w.val
	}
	for _, w := range writes {
		s.Mem[w.storage][w.idx] = w.val
	}
	s.Cycle++
	return nil
}

// Run executes n cycles.
func (s *Simulator) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunProgram loads words, runs exactly len(words) cycles (straight-line
// execution driven by the PC), and returns.  The PC must start at 0.
func (s *Simulator) RunProgram(words []uint64) error {
	if err := s.LoadProgram(words); err != nil {
		return err
	}
	return s.Run(len(words))
}

// OutVal evaluates a primary output port in the current state.
func (s *Simulator) OutVal(name string) (int64, error) {
	d, ok := s.N.PrimaryOut[name]
	if !ok {
		return 0, fmt.Errorf("sim: unknown primary output %s", name)
	}
	if s.outCache == nil {
		s.outCache = make(map[string]int64)
		s.busCache = make(map[string]int64)
	}
	return s.evalDriver(d)
}

// evalMod evaluates a module-scope expression within an instance.
func (s *Simulator) evalMod(inst *netlist.Inst, e hdl.Expr) (int64, error) {
	switch x := e.(type) {
	case *hdl.NumExpr:
		return rtl.Wrap(x.Val, x.Width), nil
	case *hdl.IdentExpr:
		switch {
		case x.Port != nil:
			d := inst.Drivers[x.Name]
			if d == nil {
				return 0, fmt.Errorf("sim: %s.%s undriven", inst.Name, x.Name)
			}
			return s.evalDriver(d)
		case x.Var != nil:
			return s.Mem[inst.Name+"."+x.Var.Name][0], nil
		case x.Const != nil:
			return rtl.Wrap(x.Const.Value, x.Width), nil
		}
		return 0, fmt.Errorf("sim: unresolved identifier %s", x.Name)
	case *hdl.IndexExpr:
		if x.IsSlice {
			base, err := s.evalMod(inst, x.X)
			if err != nil {
				return 0, err
			}
			return rtl.EvalSlice(base, x.SliceHi, x.SliceLo), nil
		}
		id := x.X.(*hdl.IdentExpr)
		iv, err := s.evalMod(inst, x.Hi)
		if err != nil {
			return 0, err
		}
		idx := int(uint64(iv) & rtl.Mask(exprWidth(x.Hi)))
		cells := s.Mem[inst.Name+"."+id.Var.Name]
		if idx < 0 || idx >= len(cells) {
			return 0, fmt.Errorf("sim: cycle %d: %s.%s read index %d out of range",
				s.Cycle, inst.Name, id.Var.Name, idx)
		}
		return cells[idx], nil
	case *hdl.BinExpr:
		a, err := s.evalMod(inst, x.X)
		if err != nil {
			return 0, err
		}
		b, err := s.evalMod(inst, x.Y)
		if err != nil {
			return 0, err
		}
		return evalBin(x.Op, a, b, x, e)
	case *hdl.UnExpr:
		a, err := s.evalMod(inst, x.X)
		if err != nil {
			return 0, err
		}
		return rtl.EvalUn(x.Op, a, x.Width), nil
	case *hdl.CaseExpr:
		sel, err := s.evalMod(inst, x.Sel)
		if err != nil {
			return 0, err
		}
		selW := exprWidth(x.Sel)
		for _, a := range x.Alts {
			if rtl.Wrap(a.Val, selW) == sel {
				return s.evalMod(inst, a.Body)
			}
		}
		if x.Else != nil {
			return s.evalMod(inst, x.Else)
		}
		return 0, nil
	}
	return 0, fmt.Errorf("sim: cannot evaluate %T", e)
}

func exprWidth(e hdl.Expr) int {
	w := e.ExprWidth()
	if w <= 0 {
		return 64
	}
	return w
}

// evalBin dispatches shifts with unsigned amounts, everything else via
// rtl.EvalBin.
func evalBin(op rtl.Op, a, b int64, x *hdl.BinExpr, e hdl.Expr) (int64, error) {
	switch op {
	case rtl.OpShl, rtl.OpShr, rtl.OpAshr:
		amt := int64(uint64(b) & rtl.Mask(exprWidth(x.Y)))
		return rtl.EvalBin(op, a, amt, x.Width), nil
	}
	return rtl.EvalBin(op, a, b, x.Width), nil
}

// evalOut evaluates an instance output port (with per-cycle memoization).
func (s *Simulator) evalOut(inst *netlist.Inst, port string) (int64, error) {
	key := inst.Name + "." + port
	if v, ok := s.outCache[key]; ok {
		return v, nil
	}
	st := inst.OutStmt(port)
	if st == nil {
		return 0, fmt.Errorf("sim: output %s has no behavior", key)
	}
	v, err := s.evalMod(inst, st.RHS)
	if err != nil {
		return 0, err
	}
	s.outCache[key] = v
	return v, nil
}

// evalDriver evaluates a value source (with slicing).
func (s *Simulator) evalDriver(d *netlist.Driver) (int64, error) {
	switch d.Kind {
	case netlist.DriveConst:
		return rtl.Wrap(d.Const, d.Width), nil
	case netlist.DrivePrimary:
		full := s.In[d.Primary]
		return rtl.EvalSlice(full, d.Hi, d.Lo), nil
	case netlist.DrivePort:
		v, err := s.evalOut(d.Inst, d.Port)
		if err != nil {
			return 0, err
		}
		full := d.Inst.Mod.PortByName[d.Port].Width
		if d.Lo == 0 && d.Hi == full-1 {
			return v, nil
		}
		return rtl.EvalSlice(v, d.Hi, d.Lo), nil
	case netlist.DriveBus:
		v, err := s.evalBus(d.Bus)
		if err != nil {
			return 0, err
		}
		if d.Lo == 0 && d.Hi == d.Bus.Width-1 {
			return v, nil
		}
		return rtl.EvalSlice(v, d.Hi, d.Lo), nil
	}
	return 0, fmt.Errorf("sim: bad driver")
}

// evalBus resolves tristate arbitration: exactly one enabled driver.
func (s *Simulator) evalBus(b *netlist.Bus) (int64, error) {
	if v, ok := s.busCache[b.Name]; ok {
		return v, nil
	}
	active := -1
	for i, bd := range b.Drivers {
		en := int64(-1) // unconditional drivers are always on
		if bd.When != nil {
			v, err := s.evalConn(bd.When)
			if err != nil {
				return 0, err
			}
			en = v
		}
		if en != 0 {
			if active >= 0 {
				return 0, fmt.Errorf("sim: cycle %d: bus %s contention (drivers %d and %d)",
					s.Cycle, b.Name, active, i)
			}
			active = i
		}
	}
	if active < 0 {
		return 0, fmt.Errorf("sim: cycle %d: bus %s floating", s.Cycle, b.Name)
	}
	v, err := s.evalDriver(b.Drivers[active].Src)
	if err != nil {
		return 0, err
	}
	s.busCache[b.Name] = v
	return v, nil
}

// evalConn evaluates a connect-scope expression (bus WHEN condition).
func (s *Simulator) evalConn(e hdl.Expr) (int64, error) {
	switch x := e.(type) {
	case *hdl.NumExpr:
		return rtl.Wrap(x.Val, x.Width), nil
	case *hdl.PortSelExpr:
		inst := s.N.InstByName[x.Part]
		return s.evalOut(inst, x.Port)
	case *hdl.IndexExpr:
		if !x.IsSlice {
			return 0, fmt.Errorf("sim: bad WHEN expression %s", e)
		}
		base, err := s.evalConn(x.X)
		if err != nil {
			return 0, err
		}
		return rtl.EvalSlice(base, x.SliceHi, x.SliceLo), nil
	case *hdl.BinExpr:
		a, err := s.evalConn(x.X)
		if err != nil {
			return 0, err
		}
		b, err := s.evalConn(x.Y)
		if err != nil {
			return 0, err
		}
		return evalBin(x.Op, a, b, x, e)
	case *hdl.UnExpr:
		a, err := s.evalConn(x.X)
		if err != nil {
			return 0, err
		}
		return rtl.EvalUn(x.Op, a, x.Width), nil
	}
	return 0, fmt.Errorf("sim: cannot evaluate WHEN %T", e)
}
