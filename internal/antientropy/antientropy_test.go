package antientropy

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/fleet"
)

func keyFor(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", seed)))
	return fmt.Sprintf("%x", sum)
}

func TestSetDigestOrderIndependent(t *testing.T) {
	a := []string{keyFor(1), keyFor(2), keyFor(3)}
	b := []string{keyFor(3), keyFor(1), keyFor(2)}
	if SetDigest(a) != SetDigest(b) {
		t.Fatal("digest depends on order")
	}
	if SetDigest(a) == SetDigest(a[:2]) {
		t.Fatal("digest ignores membership")
	}
	if SetDigest(nil) != SetDigest([]string{}) {
		t.Fatal("empty-set digests disagree")
	}
}

func TestPagePagination(t *testing.T) {
	var keys []string
	for i := 0; i < 10; i++ {
		keys = append(keys, keyFor(i))
	}
	digest := SetDigest(keys)

	// Digest-only probe.
	probe := Page("n", keys, "", -1)
	if probe.Digest != digest || probe.Total != 10 || len(probe.Keys) != 0 {
		t.Fatalf("digest probe %+v, want digest-only with total 10", probe)
	}

	// Walk in pages of 3; the union must be the full sorted set, every
	// page carrying the same digest.
	var got []string
	after := ""
	pages := 0
	for {
		p := Page("n", keys, after, 3)
		if p.Digest != digest {
			t.Fatalf("page digest %q, want %q", p.Digest, digest)
		}
		got = append(got, p.Keys...)
		pages++
		if p.Next == "" {
			break
		}
		after = p.Next
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(got, sorted) {
		t.Fatalf("paged walk got %d keys, want the sorted set", len(got))
	}
	if pages != 4 { // 3+3+3+1
		t.Fatalf("walk took %d pages, want 4", pages)
	}
}

func TestPageClampsLimit(t *testing.T) {
	var keys []string
	for i := 0; i < 5; i++ {
		keys = append(keys, keyFor(i))
	}
	if p := Page("n", keys, "", 0); len(p.Keys) != 5 {
		t.Fatalf("limit 0 should default, got %d keys", len(p.Keys))
	}
	if p := Page("n", keys, "", MaxPageSize+100); len(p.Keys) != 5 {
		t.Fatalf("oversized limit broke paging: %d keys", len(p.Keys))
	}
	if p := Page("n", keys, "", 5); p.Next != "" {
		t.Fatalf("exact-fit page should be the last, Next=%q", p.Next)
	}
}

// testFleet is a fake 3-node fleet for the agent: every node's key set
// is a map, the hooks operate on those maps directly.
type testFleet struct {
	self  string
	nodes map[string]map[string]bool
	// pushErr makes Push fail for a given peer.
	pushErr map[string]error

	digestFetches int
	keyFetches    int
	pushes        []string // "peer/key"
}

func (f *testFleet) agent(replicate int) *Agent {
	var peers []string
	for n := range f.nodes {
		if n != f.self {
			peers = append(peers, n)
		}
	}
	sort.Strings(peers)
	members := append([]string{f.self}, peers...)
	return New(Config{
		Self:      f.self,
		Peers:     peers,
		Ring:      fleet.NewRing(0, members...),
		Replicate: replicate,
		Keys: func() []string {
			var out []string
			for k := range f.nodes[f.self] {
				out = append(out, k)
			}
			sort.Strings(out)
			return out
		},
		Encoded: func(key string) ([]byte, error) {
			if !f.nodes[f.self][key] {
				return nil, errors.New("gone")
			}
			return []byte("artifact:" + key), nil
		},
		FetchDigest: func(ctx context.Context, peer string) (string, error) {
			f.digestFetches++
			var keys []string
			for k := range f.nodes[peer] {
				keys = append(keys, k)
			}
			return SetDigest(keys), nil
		},
		FetchKeys: func(ctx context.Context, peer string) (*PeerInventory, error) {
			f.keyFetches++
			inv := &PeerInventory{Keys: make(map[string]bool)}
			var keys []string
			for k := range f.nodes[peer] {
				inv.Keys[k] = true
				keys = append(keys, k)
			}
			inv.Digest = SetDigest(keys)
			return inv, nil
		},
		Push: func(ctx context.Context, peer, key string, data []byte) error {
			if err := f.pushErr[peer]; err != nil {
				return err
			}
			f.pushes = append(f.pushes, peer+"/"+key)
			f.nodes[peer][key] = true
			return nil
		},
	})
}

func newTestFleet(self string, others ...string) *testFleet {
	f := &testFleet{self: self, nodes: map[string]map[string]bool{self: {}}, pushErr: map[string]error{}}
	for _, o := range others {
		f.nodes[o] = map[string]bool{}
	}
	return f
}

// ownedKey finds a key this node owns on the agent's ring.
func ownedKey(t *testing.T, a *Agent, self string) string {
	t.Helper()
	for seed := 0; seed < 1000; seed++ {
		if k := keyFor(seed); a.cfg.Ring.Owner(k) == self {
			return k
		}
	}
	t.Fatal("no owned key in 1000 tries")
	return ""
}

func TestSweepPushesUnderReplicatedOwnedKeys(t *testing.T) {
	f := newTestFleet("http://a", "http://b", "http://c")
	a := f.agent(2)
	key := ownedKey(t, a, "http://a")
	f.nodes["http://a"][key] = true

	rep := a.Sweep(context.Background())
	if rep.Owned != 1 || rep.UnderReplicated != 1 || rep.Pushed != 1 {
		t.Fatalf("sweep %+v, want 1 owned, 1 under-replicated, 1 pushed", rep)
	}
	succ := a.cfg.Ring.Successors(key, 2)
	var wantPeer string
	for _, s := range succ {
		if s != "http://a" {
			wantPeer = s
		}
	}
	if want := wantPeer + "/" + key; len(f.pushes) != 1 || f.pushes[0] != want {
		t.Fatalf("pushes %v, want [%s]", f.pushes, want)
	}
	if rep.MinReplicas != 2 {
		t.Fatalf("MinReplicas = %d after push, want 2", rep.MinReplicas)
	}

	// A second sweep finds the fleet converged: nothing more to push.
	rep = a.Sweep(context.Background())
	if rep.UnderReplicated != 0 || rep.Pushed != 0 {
		t.Fatalf("second sweep %+v, want converged", rep)
	}
}

func TestSweepIgnoresKeysItDoesNotOwn(t *testing.T) {
	f := newTestFleet("http://a", "http://b", "http://c")
	a := f.agent(2)
	// Find a key owned by someone else and hold a copy of it locally.
	var key string
	for seed := 0; seed < 1000; seed++ {
		if k := keyFor(seed); a.cfg.Ring.Owner(k) != "http://a" {
			key = k
			break
		}
	}
	f.nodes["http://a"][key] = true

	rep := a.Sweep(context.Background())
	if rep.Owned != 0 || rep.Pushed != 0 {
		t.Fatalf("sweep %+v: pushed a key this node does not own", rep)
	}
}

func TestSweepDigestCaching(t *testing.T) {
	f := newTestFleet("http://a", "http://b", "http://c")
	a := f.agent(2)

	a.Sweep(context.Background())
	if f.keyFetches != 2 {
		t.Fatalf("first sweep listed %d peers, want 2", f.keyFetches)
	}
	// Unchanged peers: the second sweep pays only the digest probe.
	a.Sweep(context.Background())
	if f.keyFetches != 2 {
		t.Fatalf("unchanged peers re-listed (keyFetches=%d)", f.keyFetches)
	}
	// A peer's set changes: only then is the listing re-fetched.
	f.nodes["http://b"][keyFor(7)] = true
	a.Sweep(context.Background())
	if f.keyFetches != 3 {
		t.Fatalf("changed peer not re-listed (keyFetches=%d)", f.keyFetches)
	}
}

func TestSweepPushFailureDegrades(t *testing.T) {
	f := newTestFleet("http://a", "http://b", "http://c")
	a := f.agent(3) // everyone replicates everywhere in a 3-node fleet
	key := ownedKey(t, a, "http://a")
	f.nodes["http://a"][key] = true
	f.pushErr["http://b"] = errors.New("disk degraded")

	rep := a.Sweep(context.Background())
	if rep.PushErrors != 1 {
		t.Fatalf("sweep %+v, want 1 push error", rep)
	}
	// The healthy peer still got its copy — one failure never aborts the
	// sweep.
	if !f.nodes["http://c"][key] {
		t.Fatal("healthy peer was not backfilled after the other peer failed")
	}
	// Next sweep retries the failed peer and converges.
	delete(f.pushErr, "http://b")
	rep = a.Sweep(context.Background())
	if rep.Pushed != 1 || !f.nodes["http://b"][key] {
		t.Fatalf("retry sweep %+v; recovered peer still missing the key", rep)
	}
}

func TestSweepPushFaultpoint(t *testing.T) {
	f := newTestFleet("http://a", "http://b", "http://c")
	a := f.agent(2)
	key := ownedKey(t, a, "http://a")
	f.nodes["http://a"][key] = true

	faultpoint.Arm("recordd.antientropy.push", faultpoint.Action{Kind: faultpoint.KindError})
	defer faultpoint.Reset()
	rep := a.Sweep(context.Background())
	if rep.PushErrors != 1 || rep.Pushed != 0 || len(f.pushes) != 0 {
		t.Fatalf("sweep %+v pushes %v: armed faultpoint should fail the push before the hook", rep, f.pushes)
	}
}

func TestSweepPushBudget(t *testing.T) {
	f := newTestFleet("http://a", "http://b", "http://c")
	cfgAgent := f.agent(2)
	var owned []string
	for seed := 0; len(owned) < 5 && seed < 5000; seed++ {
		if k := keyFor(seed); cfgAgent.cfg.Ring.Owner(k) == "http://a" {
			owned = append(owned, k)
			f.nodes["http://a"][k] = true
		}
	}
	cfgAgent.cfg.MaxPushPerSweep = 2

	rep := cfgAgent.Sweep(context.Background())
	if rep.Pushed != 2 || rep.Skipped == 0 {
		t.Fatalf("sweep %+v, want exactly 2 pushes and some skipped", rep)
	}
	// Converges over later sweeps regardless of the per-sweep bound.
	for i := 0; i < 4; i++ {
		cfgAgent.Sweep(context.Background())
	}
	if rep := cfgAgent.Sweep(context.Background()); rep.UnderReplicated != 0 {
		t.Fatalf("fleet did not converge under push budget: %+v", rep)
	}
}
