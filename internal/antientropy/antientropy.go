// Package antientropy makes artifact replication proactive.  The peer
// tier (internal/rcache PeerFetch) replicates pull-on-miss: a copy
// travels only when some node happens to need it, so most keys live on
// exactly one disk and a single lost node silently destroys the only
// replica of everything it exclusively owned.  Retargeted artifacts are
// the expensive product of the whole HDL→ISE→grammar→BURS pipeline —
// the offline-generated tables worth computing once and preserving — so
// each node runs an anti-entropy agent that periodically:
//
//  1. exchanges a compact inventory digest with every healthy peer
//     (GET /v1/inventory on recordd: a set digest plus a paginated key
//     listing, re-fetched only when the digest moved);
//  2. computes which of the keys it owns on the consistent-hash ring
//     are under-replicated across the key's fleet.Ring.Successors;
//  3. pushes the missing copies (PUT /v1/artifact/{key} on recordd,
//     decode-verified by the receiver before acceptance).
//
// The agent is deliberately one-directional: a node pushes only keys it
// owns, to the key's successor replicas.  Every node runs the same rule
// over the same ring, so the fleet converges on Replicate durable copies
// of every key with no coordinator, no version vectors and no deletion
// protocol (artifacts are immutable and content-addressed: a key is
// either present and correct or absent, so "newest wins" never arises).
package antientropy

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"time"

	"repro/internal/diag"
	"repro/internal/faultpoint"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Inventory is the wire form of GET /v1/inventory: one page of a node's
// sorted artifact-key listing plus the digest of the whole set.  The
// digest rides on every page so a caller can detect the set changing
// under a paginated walk (and cheaply skip the walk entirely when the
// digest matches a cached copy).
type Inventory struct {
	Node   string   `json:"node"`             // serving node's identity
	Total  int      `json:"total"`            // size of the full key set
	Digest string   `json:"digest"`           // SetDigest of the full key set
	Keys   []string `json:"keys"`             // this page, sorted ascending
	Next   string   `json:"next,omitempty"`   // cursor: pass as after=; empty = last page
}

// SetDigest fingerprints a key set independent of order: SHA-256 over
// the sorted keys, newline-separated.  Two nodes hold the same artifact
// set iff their digests match.
func SetDigest(keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, k := range sorted {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultPageSize bounds one inventory page when the caller asks for 0.
const DefaultPageSize = 512

// MaxPageSize is the hard page bound; larger requests are clamped.
const MaxPageSize = 4096

// Page slices one inventory page out of a sorted key set: the first
// `limit` keys strictly after `after`.  limit <= 0 means
// DefaultPageSize; limit == -1 returns an empty page (digest-only — the
// cheap "has anything changed" exchange).
func Page(node string, keys []string, after string, limit int) Inventory {
	inv := Inventory{Node: node, Total: len(keys), Digest: SetDigest(keys)}
	if limit == -1 {
		return inv
	}
	if limit <= 0 {
		limit = DefaultPageSize
	}
	if limit > MaxPageSize {
		limit = MaxPageSize
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	start := sort.SearchStrings(sorted, after)
	if start < len(sorted) && sorted[start] == after {
		start++
	}
	end := start + limit
	if end > len(sorted) {
		end = len(sorted)
	}
	inv.Keys = sorted[start:end]
	if end < len(sorted) && len(inv.Keys) > 0 {
		inv.Next = inv.Keys[len(inv.Keys)-1]
	}
	return inv
}

// PeerInventory is what an Agent's Fetch hook returns: the peer's full
// key set and the digest it was listed under.
type PeerInventory struct {
	Digest string
	Keys   map[string]bool
}

// Config wires an Agent to its node.
type Config struct {
	// Self is this node's ring member name (the same string the fleet's
	// rings use for it — its advertised base URL when one is configured).
	Self string
	// Peers are the other ring members' names, which double as the
	// addresses the Fetch/Push hooks dial.
	Peers []string
	// Ring is the fleet membership (Self + Peers); ownership and
	// successor order come from here.
	Ring *fleet.Ring
	// Replicate is the desired durable copy count per key, owner
	// included; values below 2 mean 2 (1 would make anti-entropy a
	// no-op), and more than the fleet size clamps.
	Replicate int

	// Keys lists the local durable store; Encoded returns one artifact's
	// bytes (both from rcache).
	Keys    func() []string
	Encoded func(key string) ([]byte, error)

	// FetchDigest returns a peer's current inventory digest (the cheap
	// exchange); FetchKeys returns the full set.  Push uploads one
	// artifact to a peer.
	FetchDigest func(ctx context.Context, peer string) (string, error)
	FetchKeys   func(ctx context.Context, peer string) (*PeerInventory, error)
	Push        func(ctx context.Context, peer, key string, data []byte) error

	// Healthy filters peers before any exchange; nil means all peers.
	Healthy func(peer string) bool

	// MaxPushPerSweep bounds how many artifacts one sweep uploads so a
	// cold node backfills over several sweeps instead of one bandwidth
	// spike; 0 means DefaultMaxPushPerSweep.
	MaxPushPerSweep int

	// Obs supplies the metrics registry; Reporter receives warnings.
	// Both are nil-safe.
	Obs      *obs.Scope
	Reporter *diag.Reporter
}

// DefaultMaxPushPerSweep bounds one sweep's uploads when unconfigured.
const DefaultMaxPushPerSweep = 64

// Report summarizes one anti-entropy sweep.
type Report struct {
	Owned           int // local keys this node owns on the ring
	PeersReached    int // peers whose inventory was available this sweep
	UnderReplicated int // owned keys below the replication target before pushing
	Pushed          int // artifacts uploaded
	PushErrors      int // uploads that failed
	MinReplicas     int // lowest observed replica count across owned keys (after pushes)
	Skipped         int // pushes withheld by MaxPushPerSweep
}

// Agent runs the anti-entropy loop for one node.  It is not safe for
// concurrent Sweep calls; Run serializes them.
type Agent struct {
	cfg Config

	// inv caches each peer's key set by digest so an unchanged peer
	// costs one digest round-trip per sweep, not a full listing.
	inv map[string]*PeerInventory

	cSweeps   *obs.Counter
	cPush     *obs.CounterVec // outcome: ok | error
	gRepl     *obs.Gauge      // record_recordd_replication_factor
	gUnder    *obs.Gauge
	hSweepDur *obs.Histogram
}

// New builds an Agent and registers its instruments.
func New(cfg Config) *Agent {
	if cfg.Replicate < 2 {
		cfg.Replicate = 2
	}
	if cfg.MaxPushPerSweep <= 0 {
		cfg.MaxPushPerSweep = DefaultMaxPushPerSweep
	}
	reg := cfg.Obs.Registry()
	return &Agent{
		cfg: cfg,
		inv: make(map[string]*PeerInventory),
		cSweeps: reg.Counter("record_recordd_antientropy_sweeps_total",
			"anti-entropy sweeps run"),
		cPush: reg.CounterVec("record_recordd_antientropy_push_total",
			"artifacts pushed to under-replicated successors, by outcome", "outcome"),
		gRepl: reg.Gauge("record_recordd_replication_factor",
			"lowest replica count observed across a sample of the keys this node owns (0 = nothing owned or no peer reachable to verify)"),
		gUnder: reg.Gauge("record_recordd_under_replicated_keys",
			"owned keys observed below the replication target in the last sweep, after pushes"),
		hSweepDur: reg.Histogram("record_recordd_antientropy_sweep_seconds",
			"wall time of one anti-entropy sweep", nil),
	}
}

// Sweep runs one full anti-entropy pass: inventory exchange, ownership
// scan, pushes.  Push failures degrade to warnings — the sweep continues
// and the next interval retries; convergence, not completion, is the
// contract.
func (a *Agent) Sweep(ctx context.Context) Report {
	start := time.Now()
	a.cSweeps.Inc()
	var rep Report

	inventories := a.exchange(ctx)
	rep.PeersReached = len(inventories)

	local := a.cfg.Keys()
	budget := a.cfg.MaxPushPerSweep
	minRepl := -1
	for _, key := range local {
		if ctx.Err() != nil {
			break
		}
		if a.cfg.Ring.Owner(key) != a.cfg.Self {
			continue
		}
		rep.Owned++
		replicas := a.replicate(ctx, key, inventories, &rep, &budget)
		if minRepl < 0 || replicas < minRepl {
			minRepl = replicas
		}
	}
	if minRepl < 0 {
		minRepl = 0
	}
	rep.MinReplicas = minRepl
	a.gRepl.Set(int64(minRepl))
	a.gUnder.Set(int64(rep.UnderReplicated - rep.Pushed))
	a.hSweepDur.Observe(time.Since(start).Seconds())
	return rep
}

// exchange collects the key sets of every healthy peer, re-listing only
// peers whose digest moved since the cached copy.
func (a *Agent) exchange(ctx context.Context) map[string]*PeerInventory {
	out := make(map[string]*PeerInventory, len(a.cfg.Peers))
	for _, peer := range a.cfg.Peers {
		if ctx.Err() != nil {
			break
		}
		if a.cfg.Healthy != nil && !a.cfg.Healthy(peer) {
			continue
		}
		digest, err := a.cfg.FetchDigest(ctx, peer)
		if err != nil {
			a.cfg.Reporter.Warnf("antientropy", diag.Pos{},
				"inventory digest from %s failed: %v", peer, err)
			continue
		}
		if cached, ok := a.inv[peer]; ok && cached.Digest == digest {
			out[peer] = cached
			continue
		}
		inv, err := a.cfg.FetchKeys(ctx, peer)
		if err != nil {
			a.cfg.Reporter.Warnf("antientropy", diag.Pos{},
				"inventory listing from %s failed: %v", peer, err)
			continue
		}
		a.inv[peer] = inv
		out[peer] = inv
	}
	return out
}

// replicate brings one owned key up to the replication target across its
// ring successors, returning the replica count it could verify (self
// included).  Successor peers with no inventory this sweep (unreachable,
// or digest fetch failed) are skipped entirely: pushing blind would
// re-upload on every sweep, and counting them as holders would hide real
// under-replication.
func (a *Agent) replicate(ctx context.Context, key string, inventories map[string]*PeerInventory, rep *Report, budget *int) int {
	succ := a.cfg.Ring.Successors(key, a.cfg.Replicate)
	replicas := 1 // the local durable copy
	missing := make([]string, 0, len(succ))
	for _, s := range succ {
		if s == a.cfg.Self {
			continue
		}
		inv, ok := inventories[s]
		if !ok {
			continue
		}
		if inv.Keys[key] {
			replicas++
		} else {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		return replicas
	}
	rep.UnderReplicated++
	data, err := a.cfg.Encoded(key)
	if err != nil {
		// Vanished between Keys() and now (eviction race); the next
		// sweep sees the true state.
		return replicas
	}
	for _, peer := range missing {
		if *budget <= 0 {
			rep.Skipped++
			return replicas
		}
		*budget--
		err := faultpoint.Hit("recordd.antientropy.push", key)
		if err == nil {
			err = a.cfg.Push(ctx, peer, key, data)
		}
		if err != nil {
			rep.PushErrors++
			a.cPush.With("error").Inc()
			a.cfg.Reporter.Warnf("antientropy", diag.Pos{},
				"push of %s to %s failed: %v", key, peer, err)
			continue
		}
		rep.Pushed++
		replicas++
		a.cPush.With("ok").Inc()
		// Keep the cached inventory truthful so the next sweep does not
		// re-push into an unchanged digest.
		if inv := a.inv[peer]; inv != nil {
			inv.Keys[key] = true
			inv.Digest = "" // set changed; force a re-list next sweep
		}
	}
	return replicas
}

// Run drives sweeps every interval until ctx ends or stop closes
// (recordd passes its drain channel — a draining node stops pushing, but
// its GET/PUT artifact endpoints stay drain-exempt so peers can still
// backfill from and to it).
func (a *Agent) Run(ctx context.Context, interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-t.C:
			a.Sweep(ctx)
		}
	}
}
