package asm_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/code"
	"repro/internal/core"
)

// micro16t is a compact accumulator machine exercising encoding paths.
const micro16t = `
PROCESSOR enctest;
CONST WORD = 16;

MODULE Alu (IN a: WORD; IN b: WORD; IN op: 3; OUT y: WORD);
BEGIN
  y <- CASE op OF 0: a + b; 1: a - b; 2: a & b; 3: a | b;
                  4: a ^ b; 5: b; 6: a * b; 7: -b; END;
END;

MODULE BMux (IN m: WORD; IN imm: WORD; IN s: 1; OUT y: WORD);
BEGIN
  y <- CASE s OF 0: m; 1: imm; END;
END;

MODULE Reg (IN d: WORD; IN ld: 1; OUT q: WORD);
VAR r: WORD;
BEGIN q <- r; AT ld == 1 DO r <- d; END;

MODULE Ram (IN a: 8; IN d: WORD; IN w: 1; OUT q: WORD);
VAR m: WORD [256];
BEGIN q <- m[a]; AT w == 1 DO m[a] <- d; END;

MODULE Rom (IN a: 8; OUT q: 32);
VAR m: 32 [256];
BEGIN q <- m[a]; END;

MODULE Inc (IN a: 8; OUT y: 8);
BEGIN y <- a + 1; END;

MODULE PcReg (IN d: 8; OUT q: 8);
VAR r: 8;
BEGIN q <- r; r <- d; END;

PARTS
  alu  : Alu;
  bmux : BMux;
  acc  : Reg;
  ram  : Ram;
  imem : Rom INSTRUCTION;
  pc   : PcReg PC;
  pinc : Inc;

CONNECT
  alu.a    <- acc.q;
  alu.b    <- bmux.y;
  alu.op   <- imem.q[31:29];
  bmux.m   <- ram.q;
  bmux.imm <- imem.q[15:0];
  bmux.s   <- imem.q[28];
  acc.d    <- alu.y;
  acc.ld   <- imem.q[27];
  ram.a    <- imem.q[7:0];
  ram.d    <- acc.q;
  ram.w    <- imem.q[26];
  imem.a   <- pc.q;
  pinc.a   <- pc.q;
  pc.d     <- pinc.y;
END.
`

func target(t *testing.T) *core.Target {
	t.Helper()
	tg, err := core.RetargetContext(context.Background(), micro16t, core.RetargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// findInstr builds an Instr for the template matching the fragment.
func findInstr(t *testing.T, tg *core.Target, frag string, fields ...code.Field) *code.Instr {
	t.Helper()
	for _, tpl := range tg.Base.Templates {
		if strings.Contains(tpl.String(), frag) {
			return &code.Instr{Template: tpl, Fields: fields}
		}
	}
	t.Fatalf("no template matching %q", frag)
	return nil
}

func TestNOPEncodable(t *testing.T) {
	tg := target(t)
	nop, err := tg.Encoder.NewSession().NOP()
	if err != nil {
		t.Fatal(err)
	}
	// The NOP must clear the acc and ram write enables (bits 27, 26).
	if nop&(1<<27) != 0 || nop&(1<<26) != 0 {
		t.Errorf("NOP %x enables a write", nop)
	}
}

func TestEncodeSingle(t *testing.T) {
	tg := target(t)
	// Load immediate: acc := IW[15:0] with value 42.
	in := findInstr(t, tg, "acc.r := IW[15:0]", code.Field{Hi: 15, Lo: 0, Val: 42})
	word, mode, err := tg.Encoder.NewSession().Encode([]*code.Instr{in})
	if err != nil {
		t.Fatal(err)
	}
	if mode != nil {
		t.Errorf("unexpected mode requirement %v", mode)
	}
	if word&0xFFFF != 42 {
		t.Errorf("imm field = %d", word&0xFFFF)
	}
	if word&(1<<27) == 0 {
		t.Error("acc.ld not set")
	}
	if word&(1<<28) == 0 {
		t.Error("imm source not selected")
	}
	if word&(1<<26) != 0 {
		t.Error("encoded word spuriously writes memory (quiescence violated)")
	}
}

func TestEncodeConflictingFields(t *testing.T) {
	tg := target(t)
	// Two acc writes in one word: condition conflict (same aluop bits must
	// take two values and acc written twice).
	a := findInstr(t, tg, "acc.r := IW[15:0]", code.Field{Hi: 15, Lo: 0, Val: 1})
	b := findInstr(t, tg, "acc.r := (acc.r + ram.m[IW[7:0]])", code.Field{Hi: 7, Lo: 0, Val: 3})
	if tg.Encoder.NewSession().Feasible([]*code.Instr{a, b}) {
		t.Error("two simultaneous acc writes encoded")
	}
	// Same instruction with two different immediate values.
	c := findInstr(t, tg, "acc.r := IW[15:0]", code.Field{Hi: 15, Lo: 0, Val: 2})
	if tg.Encoder.NewSession().Feasible([]*code.Instr{a, c}) {
		t.Error("conflicting operand fields encoded")
	}
}

func TestEncodeFieldContradictsCondition(t *testing.T) {
	tg := target(t)
	// The load-immediate template requires bmux.s (bit 28) = 1; forcing an
	// operand field value is fine, but a field on the *control* bits that
	// contradicts the condition must fail.  Simulate by adding a bogus
	// field covering bit 28 with value 0.
	in := findInstr(t, tg, "acc.r := IW[15:0]",
		code.Field{Hi: 15, Lo: 0, Val: 1},
		code.Field{Hi: 28, Lo: 28, Val: 0})
	if _, _, err := tg.Encoder.NewSession().Encode([]*code.Instr{in}); err == nil {
		t.Error("field contradicting the execution condition encoded")
	}
}

func TestFieldBeyondWidthRejected(t *testing.T) {
	tg := target(t)
	in := findInstr(t, tg, "acc.r := IW[15:0]", code.Field{Hi: 99, Lo: 90, Val: 1})
	if _, _, err := tg.Encoder.NewSession().Encode([]*code.Instr{in}); err == nil {
		t.Error("field beyond instruction width accepted")
	}
}

func TestParallelStoreAndUnrelatedFieldSharing(t *testing.T) {
	tg := target(t)
	// Store and an ALU op on acc cannot share a word here (store reads
	// acc while the op writes it is fine — WAR — but the store's address
	// field overlaps the immediate operand bits [7:0]).
	st := findInstr(t, tg, "ram.m[IW[7:0]] := acc.r", code.Field{Hi: 7, Lo: 0, Val: 5})
	add := findInstr(t, tg, "acc.r := (acc.r + IW[15:0])", code.Field{Hi: 15, Lo: 0, Val: 5})
	// Immediate 5 == address 5: the shared low bits agree, so this *is*
	// encodable.
	if !tg.Encoder.NewSession().Feasible([]*code.Instr{st, add}) {
		t.Error("compatible store+add rejected")
	}
	add2 := findInstr(t, tg, "acc.r := (acc.r + IW[15:0])", code.Field{Hi: 15, Lo: 0, Val: 9})
	if tg.Encoder.NewSession().Feasible([]*code.Instr{st, add2}) {
		t.Error("store+add with clashing low bits accepted")
	}
}

func TestEncodeProgramAndListing(t *testing.T) {
	tg := target(t)
	res, err := tg.CompileSourceContext(context.Background(), `int x; int y; x = 7; y = x + 1;`, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Code.Words {
		if !w.Encoded {
			t.Error("word left unencoded")
		}
	}
	lst := tg.Encoder.Listing(res.Code)
	if !strings.Contains(lst, "x = 7;") {
		t.Errorf("listing lacks source comments:\n%s", lst)
	}
	if len(strings.Split(strings.TrimSpace(lst), "\n")) != res.CodeLen() {
		t.Error("listing line count mismatch")
	}
}
