// Package asm encodes instruction words from RT execution conditions.
//
// The execution condition of each selected RT instance constrains the
// instruction-word bits (a BDD from instruction-set extraction); operand
// fields pin further bits.  Encoding a word conjoins everything, adds
// quiescence constraints — every storage not deliberately written this
// cycle must have all of its (suppressible) write conditions false, so a
// data word cannot accidentally trigger a store or a jump — and picks a
// satisfying assignment of the instruction bits.  Conditions over
// mode-register bits become mode-state requirements recorded per word.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/code"
	"repro/internal/ise"
	"repro/internal/obs"
	"repro/internal/rtl"
)

// Encoder encodes instruction words for one extracted machine.
//
// A fresh Encoder is single-threaded: encoding operations memoize in the
// shared BDD manager.  Freeze bakes the per-template encoding tables and
// freezes the manager, after which the Encoder is immutable and any number
// of Sessions may encode concurrently.
type Encoder struct {
	Vars *ise.VarMap
	Base *rtl.Base

	m *bdd.Manager
	// quiesce maps a storage to the disjunction of the static conditions
	// of its suppressible write templates.
	quiesce map[string]*bdd.Node
	// quiet is the conjunction of all negated quiesce conditions (the NOP
	// condition).
	quiet *bdd.Node

	// Baked at Freeze time; read-only afterwards.
	frozen      bool
	storageList []string    // sorted quiesce keys
	notQuiesce  []*bdd.Node // ¬quiesce[storageList[i]]
	// solo[t] is t's full single-instruction word condition: its static
	// execution condition conjoined with quiescence of every other
	// suppressible storage.  Encoding the common case (one RT per word,
	// and every word under -no-compaction) is then one cube conjunction
	// and a satisfiability walk — no shared-state mutation at all.
	solo map[*rtl.Template]*bdd.Node
	// nop is the baked quiescent instruction word; nopErr records a
	// machine without one.
	nop    uint64
	nopErr error
}

// NewEncoder analyses the template base and builds the quiescence
// conditions.  background lists storages that are written every cycle by
// design (the program counter behind a next-PC multiplexer): they are
// exempt from quiescence, and their unconstrained control bits default to
// 0 — models must make the all-zero selection the benign one (PC+1).
func NewEncoder(vars *ise.VarMap, base *rtl.Base, background ...string) *Encoder {
	e := &Encoder{Vars: vars, Base: base, m: vars.M,
		quiesce: make(map[string]*bdd.Node)}
	bg := make(map[string]bool, len(background))
	for _, s := range background {
		bg[s] = true
	}
	for _, t := range base.Templates {
		if t.DestPort || bg[t.Dest] {
			continue // port drives / background storages are not suppressed
		}
		if e.m.Tautology(t.Cond.Static) {
			// Unconditional background behavior (e.g. the PC increment)
			// cannot be suppressed; it is part of the machine semantics.
			continue
		}
		prev, ok := e.quiesce[t.Dest]
		if !ok {
			prev = e.m.False()
		}
		e.quiesce[t.Dest] = e.m.Or(prev, t.Cond.Static)
	}
	e.quiet = e.m.True()
	for _, s := range e.storages() {
		e.quiet = e.m.And(e.quiet, e.m.Not(e.quiesce[s]))
	}
	return e
}

func (e *Encoder) storages() []string {
	out := make([]string, 0, len(e.quiesce))
	for s := range e.quiesce {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ModeReq is a required mode-register state: storage name → bit values.
type ModeReq map[string]int64

// Freeze bakes the read-only encoding tables — per-template solo word
// conditions, negated quiescence conditions in sorted storage order, the
// NOP word — and freezes the BDD manager.  After Freeze the Encoder never
// mutates shared state: every residual BDD operation a Session performs
// runs through a private copy-on-write view, so any number of Sessions
// may encode concurrently.  Freeze is idempotent and must be the last
// manager-mutating step of a retarget.
func (e *Encoder) Freeze() {
	if e.frozen {
		return
	}
	e.storageList = e.storages()
	e.notQuiesce = make([]*bdd.Node, len(e.storageList))
	for i, s := range e.storageList {
		e.notQuiesce[i] = e.m.Not(e.quiesce[s])
	}
	e.solo = make(map[*rtl.Template]*bdd.Node, e.Base.Len())
	for _, t := range e.Base.Templates {
		cond := t.Cond.Static
		for i, s := range e.storageList {
			if !t.DestPort && s == t.Dest {
				continue
			}
			cond = e.m.And(cond, e.notQuiesce[i])
		}
		e.solo[t] = cond
	}
	e.nop, e.nopErr = e.nopWord()
	e.frozen = true
	e.m.Freeze()
}

// Frozen reports whether Freeze has run.
func (e *Encoder) Frozen() bool { return e.frozen }

// SoloCond returns the baked single-instruction word condition of a
// template, or nil before Freeze.  internal/artifact serializes these so
// decoded targets skip the conjunction sweep.
func (e *Encoder) SoloCond(t *rtl.Template) *bdd.Node {
	if !e.frozen {
		return nil
	}
	return e.solo[t]
}

// FreezeWithSolo freezes the encoder installing pre-baked solo word
// conditions (aligned with Base.Templates, e.g. decoded from an artifact)
// instead of recomputing them; only the cheap per-storage quiescence
// negations and the NOP word are rebuilt.  The conditions must denote the
// same Boolean functions Freeze would compute — BDD canonicity then makes
// encodings from restored and fresh targets byte-identical.
func (e *Encoder) FreezeWithSolo(solo []*bdd.Node) error {
	if e.frozen {
		return nil
	}
	if len(solo) != len(e.Base.Templates) {
		return fmt.Errorf("asm: %d solo conditions for %d templates", len(solo), len(e.Base.Templates))
	}
	e.storageList = e.storages()
	e.notQuiesce = make([]*bdd.Node, len(e.storageList))
	for i, s := range e.storageList {
		e.notQuiesce[i] = e.m.Not(e.quiesce[s])
	}
	e.solo = make(map[*rtl.Template]*bdd.Node, e.Base.Len())
	for i, t := range e.Base.Templates {
		if solo[i] == nil {
			return fmt.Errorf("asm: nil solo condition for template %d", t.ID)
		}
		e.solo[t] = solo[i]
	}
	e.nop, e.nopErr = e.nopWord()
	e.frozen = true
	e.m.Freeze()
	return nil
}

// condOps is the BDD operation set encoding needs; satisfied by both
// *bdd.Manager (single-threaded, pre-freeze) and *bdd.View (copy-on-write
// overlay, post-freeze).
type condOps interface {
	True() *bdd.Node
	False() *bdd.Node
	And(...*bdd.Node) *bdd.Node
	Not(*bdd.Node) *bdd.Node
	Cube(map[int]bool) *bdd.Node
}

// Session is one encoding session against the (usually frozen) encoder.
// Sessions of a frozen Encoder are independent and may run concurrently;
// one Session must not be shared between goroutines.  The session's view
// accumulates operation memos across words, so one compilation should use
// one session.
type Session struct {
	e   *Encoder
	ops condOps

	// Session-local instruments (see NewSessionObs); nil discards.
	cFeas  *obs.Counter
	cWords *obs.Counter
}

// NewSession opens an encoding session.  Pre-freeze the session operates
// directly (and destructively) on the shared manager, preserving the old
// single-threaded behavior; post-freeze it gets a private view.
func (e *Encoder) NewSession() *Session {
	if e.frozen {
		return &Session{e: e, ops: e.m.NewView()}
	}
	return &Session{e: e, ops: e.m}
}

// NewSessionObs opens an encoding session with instrumentation: every
// feasibility probe (compaction scheduling trials included) and every
// successfully encoded word is counted in the scope's registry.  The
// counters are process-wide totals shared by all sessions of the
// registry; a nil scope yields an uninstrumented session.
func (e *Encoder) NewSessionObs(scope *obs.Scope) *Session {
	s := e.NewSession()
	if reg := scope.Registry(); reg != nil {
		s.cFeas = reg.Counter("record_asm_feasibility_checks_total",
			"instruction-word feasibility probes (compaction trials and encoding)")
		s.cWords = reg.Counter("record_asm_words_encoded_total",
			"instruction words successfully encoded")
	}
	return s
}

// WordCond computes the full encoding condition of a set of parallel RT
// instances: conjunction of their static conditions, their operand-field
// bit cubes, and quiescence of every untouched storage.
func (s *Session) WordCond(instrs []*code.Instr) (*bdd.Node, error) {
	e := s.e
	var cond *bdd.Node
	if e.frozen && len(instrs) == 1 {
		// Baked fast path: the solo condition already conjoins the static
		// condition with quiescence of every other storage.  A false solo
		// condition falls through to the slow path for a precise error.
		if c, ok := e.solo[instrs[0].Template]; ok && c != e.m.False() {
			cond = c
		}
	}
	if cond == nil {
		c := s.ops.True()
		intended := make(map[string]bool)
		for _, in := range instrs {
			c = s.ops.And(c, in.Template.Cond.Static)
			if !in.Template.DestPort {
				intended[in.Template.Dest] = true
			}
		}
		if c == s.ops.False() {
			return nil, fmt.Errorf("asm: conflicting execution conditions (instruction encoding conflict)")
		}
		bits, err := e.fieldBits(instrs)
		if err != nil {
			return nil, err
		}
		c = s.ops.And(c, s.ops.Cube(bits))
		if c == s.ops.False() {
			return nil, fmt.Errorf("asm: operand fields contradict execution conditions")
		}
		// Quiescence for untouched storages, in sorted storage order.
		for i, st := range e.quiesceOrder() {
			if intended[st] {
				continue
			}
			c = s.ops.And(c, e.notQuiesceAt(s.ops, i))
			if c == s.ops.False() {
				return nil, fmt.Errorf("asm: cannot encode word without disturbing %s", st)
			}
		}
		return c, nil
	}
	// Fast path: solo condition plus the operand-field cube.
	bits, err := e.fieldBits(instrs)
	if err != nil {
		return nil, err
	}
	cond = s.ops.And(cond, s.ops.Cube(bits))
	if cond == s.ops.False() {
		return nil, fmt.Errorf("asm: operand fields contradict execution conditions")
	}
	return cond, nil
}

// fieldBits collects the instruction bits pinned by operand fields.
func (e *Encoder) fieldBits(instrs []*code.Instr) (map[int]bool, error) {
	bits := make(map[int]bool) // var index -> value
	for _, in := range instrs {
		for _, f := range in.Fields {
			w := f.Hi - f.Lo + 1
			for b := 0; b < w; b++ {
				pos := f.Lo + b
				if pos >= e.Vars.InsnWidth() {
					return nil, fmt.Errorf("asm: field %s exceeds instruction width %d", f, e.Vars.InsnWidth())
				}
				v := f.Val&(1<<uint(b)) != 0
				varIdx := e.Vars.InsnVars[pos]
				if prev, ok := bits[varIdx]; ok && prev != v {
					return nil, fmt.Errorf("asm: operand fields conflict at instruction bit %d", pos)
				}
				bits[varIdx] = v
			}
		}
	}
	return bits, nil
}

// quiesceOrder returns the suppressible storages in sorted order, baked
// when frozen.
func (e *Encoder) quiesceOrder() []string {
	if e.frozen {
		return e.storageList
	}
	return e.storages()
}

// notQuiesceAt returns ¬quiesce of the i'th ordered storage, baked when
// frozen.
func (e *Encoder) notQuiesceAt(ops condOps, i int) *bdd.Node {
	if e.frozen {
		return e.notQuiesce[i]
	}
	return ops.Not(e.quiesce[e.quiesceOrder()[i]])
}

// Encode picks a concrete instruction word (and required mode state)
// satisfying the word condition.  Unconstrained bits default to 0.
func (s *Session) Encode(instrs []*code.Instr) (word uint64, mode ModeReq, err error) {
	cond, err := s.WordCond(instrs)
	if err != nil {
		return 0, nil, err
	}
	e := s.e
	assign, ok := e.m.AnySat(cond)
	if !ok {
		return 0, nil, fmt.Errorf("asm: unsatisfiable word condition")
	}
	mode = make(ModeReq)
	for v, val := range assign {
		if bit, isInsn := e.Vars.IsInsnVar(v); isInsn {
			if val {
				word |= 1 << uint(bit)
			}
			continue
		}
		if storage, bit := e.Vars.ModeVarOwner(v); storage != "" {
			if val {
				mode[storage] |= 1 << uint(bit)
			} else {
				mode[storage] |= 0
			}
		}
	}
	if len(mode) == 0 {
		mode = nil
	}
	s.cWords.Inc()
	return word, mode, nil
}

// Feasible reports whether the instruction set can execute in one word.
func (s *Session) Feasible(instrs []*code.Instr) bool {
	s.cFeas.Inc()
	_, err := s.WordCond(instrs)
	return err == nil
}

// NOP returns an instruction word that changes no suppressible storage.
func (s *Session) NOP() (uint64, error) {
	if s.e.frozen {
		return s.e.nop, s.e.nopErr
	}
	return s.e.nopWord()
}

// nopWord picks a quiescent word from the quiet condition (read-only).
func (e *Encoder) nopWord() (uint64, error) {
	assign, ok := e.m.AnySat(e.quiet)
	if !ok {
		return 0, fmt.Errorf("asm: machine has no quiescent encoding (NOP impossible)")
	}
	var word uint64
	for v, val := range assign {
		if bit, isInsn := e.Vars.IsInsnVar(v); isInsn && val {
			word |= 1 << uint(bit)
		}
	}
	return word, nil
}

// EncodeProgram fills in Bits for every word and verifies that the mode
// requirements of all words are mutually consistent (the program never
// needs two different states of one mode register without an intervening
// mode change, which this straight-line encoder does not insert).
func (s *Session) EncodeProgram(p *code.Program) (ModeReq, error) {
	required := make(ModeReq)
	seen := make(map[string]bool)
	for i, w := range p.Words {
		bits, mode, err := s.Encode(w.Instrs)
		if err != nil {
			return nil, fmt.Errorf("asm: word %d: %w", i, err)
		}
		w.Bits = bits
		w.Encoded = true
		for st, v := range mode {
			if seen[st] && required[st] != v {
				return nil, fmt.Errorf("asm: word %d needs mode %s=%d but an earlier word needs %d",
					i, st, v, required[st])
			}
			seen[st] = true
			required[st] = v
		}
	}
	if len(required) == 0 {
		return nil, nil
	}
	return required, nil
}

// ---- deprecated single-call wrappers ------------------------------------
//
// Each opens a throwaway Session; callers compiling whole programs should
// open one Session per compilation instead so the operation memo is shared
// across words.

// WordCond computes the encoding condition of a parallel word.
//
// Deprecated: use NewSession().WordCond.
func (e *Encoder) WordCond(instrs []*code.Instr) (*bdd.Node, error) {
	return e.NewSession().WordCond(instrs)
}

// Encode picks a concrete instruction word for a parallel word.
//
// Deprecated: use NewSession().Encode.
func (e *Encoder) Encode(instrs []*code.Instr) (uint64, ModeReq, error) {
	return e.NewSession().Encode(instrs)
}

// Feasible reports whether the instructions can execute in one word.
//
// Deprecated: use NewSession().Feasible.
func (e *Encoder) Feasible(instrs []*code.Instr) bool {
	return e.NewSession().Feasible(instrs)
}

// NOP returns a quiescent instruction word.
//
// Deprecated: use NewSession().NOP.
func (e *Encoder) NOP() (uint64, error) { return e.NewSession().NOP() }

// EncodeProgram encodes every word of p.
//
// Deprecated: use NewSession().EncodeProgram.
func (e *Encoder) EncodeProgram(p *code.Program) (ModeReq, error) {
	return e.NewSession().EncodeProgram(p)
}

// Listing renders an encoded program as an annotated listing.
func (e *Encoder) Listing(p *code.Program) string {
	var b strings.Builder
	width := (e.Vars.InsnWidth() + 3) / 4
	for i, w := range p.Words {
		fmt.Fprintf(&b, "%04d  %0*x  ", i, width, w.Bits)
		parts := make([]string, len(w.Instrs))
		for j, in := range w.Instrs {
			parts[j] = in.Template.String()
		}
		b.WriteString(strings.Join(parts, " || "))
		for _, in := range w.Instrs {
			if in.Comment != "" {
				fmt.Fprintf(&b, "  ; %s", in.Comment)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
