// Package asm encodes instruction words from RT execution conditions.
//
// The execution condition of each selected RT instance constrains the
// instruction-word bits (a BDD from instruction-set extraction); operand
// fields pin further bits.  Encoding a word conjoins everything, adds
// quiescence constraints — every storage not deliberately written this
// cycle must have all of its (suppressible) write conditions false, so a
// data word cannot accidentally trigger a store or a jump — and picks a
// satisfying assignment of the instruction bits.  Conditions over
// mode-register bits become mode-state requirements recorded per word.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/code"
	"repro/internal/ise"
	"repro/internal/obs"
	"repro/internal/rtl"
)

// Encoder encodes instruction words for one extracted machine.
//
// A fresh Encoder is single-threaded: encoding operations memoize in the
// shared BDD manager.  Freeze bakes the per-template encoding tables and
// freezes the manager, after which the Encoder is immutable and any number
// of Sessions may encode concurrently.
type Encoder struct {
	Vars *ise.VarMap
	Base *rtl.Base

	m *bdd.Manager
	// quiesce maps a storage to the disjunction of the static conditions
	// of its suppressible write templates.
	quiesce map[string]*bdd.Node
	// quiet is the conjunction of all negated quiesce conditions (the NOP
	// condition).
	quiet *bdd.Node

	// Baked at Freeze time; read-only afterwards.
	frozen      bool
	storageList []string    // sorted quiesce keys
	notQuiesce  []*bdd.Node // ¬quiesce[storageList[i]]
	// solo[t] is t's full single-instruction word condition: its static
	// execution condition conjoined with quiescence of every other
	// suppressible storage.  Encoding the common case (one RT per word,
	// and every word under -no-compaction) is then one cube conjunction
	// and a satisfiability walk — no shared-state mutation at all.
	solo map[*rtl.Template]*bdd.Node
	// nop is the baked quiescent instruction word; nopErr records a
	// machine without one.
	nop    uint64
	nopErr error
}

// NewEncoder analyses the template base and builds the quiescence
// conditions.  background lists storages that are written every cycle by
// design (the program counter behind a next-PC multiplexer): they are
// exempt from quiescence, and their unconstrained control bits default to
// 0 — models must make the all-zero selection the benign one (PC+1).
func NewEncoder(vars *ise.VarMap, base *rtl.Base, background ...string) *Encoder {
	e := &Encoder{Vars: vars, Base: base, m: vars.M,
		quiesce: make(map[string]*bdd.Node)}
	bg := make(map[string]bool, len(background))
	for _, s := range background {
		bg[s] = true
	}
	for _, t := range base.Templates {
		if t.DestPort || bg[t.Dest] {
			continue // port drives / background storages are not suppressed
		}
		if e.m.Tautology(t.Cond.Static) {
			// Unconditional background behavior (e.g. the PC increment)
			// cannot be suppressed; it is part of the machine semantics.
			continue
		}
		prev, ok := e.quiesce[t.Dest]
		if !ok {
			prev = e.m.False()
		}
		e.quiesce[t.Dest] = e.m.Or(prev, t.Cond.Static)
	}
	e.quiet = e.m.True()
	for _, s := range e.storages() {
		e.quiet = e.m.And(e.quiet, e.m.Not(e.quiesce[s]))
	}
	return e
}

func (e *Encoder) storages() []string {
	out := make([]string, 0, len(e.quiesce))
	for s := range e.quiesce {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ModeReq is a required mode-register state: storage name → bit values.
type ModeReq map[string]int64

// Freeze bakes the read-only encoding tables — per-template solo word
// conditions, negated quiescence conditions in sorted storage order, the
// NOP word — and freezes the BDD manager.  After Freeze the Encoder never
// mutates shared state: every residual BDD operation a Session performs
// runs through a private copy-on-write view, so any number of Sessions
// may encode concurrently.  Freeze is idempotent and must be the last
// manager-mutating step of a retarget.
func (e *Encoder) Freeze() {
	if e.frozen {
		return
	}
	e.storageList = e.storages()
	e.notQuiesce = make([]*bdd.Node, len(e.storageList))
	for i, s := range e.storageList {
		e.notQuiesce[i] = e.m.Not(e.quiesce[s])
	}
	e.solo = make(map[*rtl.Template]*bdd.Node, e.Base.Len())
	for _, t := range e.Base.Templates {
		cond := t.Cond.Static
		for i, s := range e.storageList {
			if !t.DestPort && s == t.Dest {
				continue
			}
			cond = e.m.And(cond, e.notQuiesce[i])
		}
		e.solo[t] = cond
	}
	e.nop, e.nopErr = e.nopWord()
	e.frozen = true
	e.m.Freeze()
}

// Frozen reports whether Freeze has run.
func (e *Encoder) Frozen() bool { return e.frozen }

// SoloCond returns the baked single-instruction word condition of a
// template, or nil before Freeze.  internal/artifact serializes these so
// decoded targets skip the conjunction sweep.
func (e *Encoder) SoloCond(t *rtl.Template) *bdd.Node {
	if !e.frozen {
		return nil
	}
	return e.solo[t]
}

// FreezeWithSolo freezes the encoder installing pre-baked solo word
// conditions (aligned with Base.Templates, e.g. decoded from an artifact)
// instead of recomputing them; only the cheap per-storage quiescence
// negations and the NOP word are rebuilt.  The conditions must denote the
// same Boolean functions Freeze would compute — BDD canonicity then makes
// encodings from restored and fresh targets byte-identical.
func (e *Encoder) FreezeWithSolo(solo []*bdd.Node) error {
	if e.frozen {
		return nil
	}
	if len(solo) != len(e.Base.Templates) {
		return fmt.Errorf("asm: %d solo conditions for %d templates", len(solo), len(e.Base.Templates))
	}
	e.storageList = e.storages()
	e.notQuiesce = make([]*bdd.Node, len(e.storageList))
	for i, s := range e.storageList {
		e.notQuiesce[i] = e.m.Not(e.quiesce[s])
	}
	e.solo = make(map[*rtl.Template]*bdd.Node, e.Base.Len())
	for i, t := range e.Base.Templates {
		if solo[i] == nil {
			return fmt.Errorf("asm: nil solo condition for template %d", t.ID)
		}
		e.solo[t] = solo[i]
	}
	e.nop, e.nopErr = e.nopWord()
	e.frozen = true
	e.m.Freeze()
	return nil
}

// condOps is the BDD operation set encoding needs; satisfied by both
// *bdd.Manager (single-threaded, pre-freeze) and *bdd.View (copy-on-write
// overlay, post-freeze).
type condOps interface {
	True() *bdd.Node
	False() *bdd.Node
	And(...*bdd.Node) *bdd.Node
	Not(*bdd.Node) *bdd.Node
	Cube(map[int]bool) *bdd.Node
	CubeLits([]bdd.Lit) *bdd.Node
	AnySatWalk(*bdd.Node, func(v int, val bool)) bool
}

// Session is one encoding session against the (usually frozen) encoder.
// Sessions of a frozen Encoder are independent and may run concurrently;
// one Session must not be shared between goroutines.  The session's view
// accumulates operation memos across words, so one compilation should use
// one session.  Sessions of a frozen encoder may also be pooled and reused
// across sequential compilations: results stay byte-identical because BDD
// canonicity makes every condition independent of what the view memoized
// earlier, and OverlaySize bounds how much memory a pooled session retains.
type Session struct {
	e   *Encoder
	ops condOps

	// lits is scratch for operand-field literal collection, reused across
	// words so the per-word cube costs no map and no fresh slice.
	lits []bdd.Lit

	// Session-local instruments (see NewSessionObs); nil discards.
	cFeas  *obs.Counter
	cWords *obs.Counter
}

// NewSession opens an encoding session.  Pre-freeze the session operates
// directly (and destructively) on the shared manager, preserving the old
// single-threaded behavior; post-freeze it gets a private view.
func (e *Encoder) NewSession() *Session {
	if e.frozen {
		return &Session{e: e, ops: e.m.NewView()}
	}
	return &Session{e: e, ops: e.m}
}

// NewSessionObs opens an encoding session with instrumentation: every
// feasibility probe (compaction scheduling trials included) and every
// successfully encoded word is counted in the scope's registry.  The
// counters are process-wide totals shared by all sessions of the
// registry; a nil scope yields an uninstrumented session.
func (e *Encoder) NewSessionObs(scope *obs.Scope) *Session {
	s := e.NewSession()
	if reg := scope.Registry(); reg != nil {
		s.cFeas = reg.Counter("record_asm_feasibility_checks_total",
			"instruction-word feasibility probes (compaction trials and encoding)")
		s.cWords = reg.Counter("record_asm_words_encoded_total",
			"instruction words successfully encoded")
	}
	return s
}

// WordCond computes the full encoding condition of a set of parallel RT
// instances: conjunction of their static conditions, their operand-field
// bit cubes, and quiescence of every untouched storage.
func (s *Session) WordCond(instrs []*code.Instr) (*bdd.Node, error) {
	e := s.e
	var cond *bdd.Node
	if e.frozen && len(instrs) == 1 {
		// Baked fast path: the solo condition already conjoins the static
		// condition with quiescence of every other storage.  A false solo
		// condition falls through to the slow path for a precise error.
		if c, ok := e.solo[instrs[0].Template]; ok && c != e.m.False() {
			cond = c
		}
	}
	if cond == nil {
		c := s.ops.True()
		intended := make(map[string]bool)
		for _, in := range instrs {
			c = s.ops.And(c, in.Template.Cond.Static)
			if !in.Template.DestPort {
				intended[in.Template.Dest] = true
			}
		}
		if c == s.ops.False() {
			return nil, fmt.Errorf("asm: conflicting execution conditions (instruction encoding conflict)")
		}
		lits, err := s.fieldLits(instrs)
		if err != nil {
			return nil, err
		}
		c = s.ops.And(c, s.ops.CubeLits(lits))
		if c == s.ops.False() {
			return nil, fmt.Errorf("asm: operand fields contradict execution conditions")
		}
		// Quiescence for untouched storages, in sorted storage order.
		for i, st := range e.quiesceOrder() {
			if intended[st] {
				continue
			}
			c = s.ops.And(c, e.notQuiesceAt(s.ops, i))
			if c == s.ops.False() {
				return nil, fmt.Errorf("asm: cannot encode word without disturbing %s", st)
			}
		}
		return c, nil
	}
	// Fast path: solo condition plus the operand-field cube.
	lits, err := s.fieldLits(instrs)
	if err != nil {
		return nil, err
	}
	cond = s.ops.And(cond, s.ops.CubeLits(lits))
	if cond == s.ops.False() {
		return nil, fmt.Errorf("asm: operand fields contradict execution conditions")
	}
	return cond, nil
}

// fieldLits collects the instruction bits pinned by operand fields as a
// sorted, deduplicated literal slice.  The result aliases the session's
// scratch buffer and is valid until the next fieldLits call; this keeps
// the hottest per-word allocation (formerly a map) off the compile path.
func (s *Session) fieldLits(instrs []*code.Instr) ([]bdd.Lit, error) {
	e := s.e
	lits := s.lits[:0]
	for _, in := range instrs {
		for _, f := range in.Fields {
			w := f.Hi - f.Lo + 1
			for b := 0; b < w; b++ {
				pos := f.Lo + b
				if pos >= e.Vars.InsnWidth() {
					return nil, fmt.Errorf("asm: field %s exceeds instruction width %d", f, e.Vars.InsnWidth())
				}
				lits = append(lits, bdd.Lit{
					Var: e.Vars.InsnVars[pos],
					Val: f.Val&(1<<uint(b)) != 0,
				})
			}
		}
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i].Var < lits[j].Var })
	// Collapse duplicate pins of one variable; disagreeing pins conflict.
	out := lits[:0]
	for i, l := range lits {
		if i > 0 && l.Var == out[len(out)-1].Var {
			if l.Val != out[len(out)-1].Val {
				bit, _ := e.Vars.IsInsnVar(l.Var)
				return nil, fmt.Errorf("asm: operand fields conflict at instruction bit %d", bit)
			}
			continue
		}
		out = append(out, l)
	}
	s.lits = lits
	return out, nil
}

// quiesceOrder returns the suppressible storages in sorted order, baked
// when frozen.
func (e *Encoder) quiesceOrder() []string {
	if e.frozen {
		return e.storageList
	}
	return e.storages()
}

// notQuiesceAt returns ¬quiesce of the i'th ordered storage, baked when
// frozen.
func (e *Encoder) notQuiesceAt(ops condOps, i int) *bdd.Node {
	if e.frozen {
		return e.notQuiesce[i]
	}
	return ops.Not(e.quiesce[e.quiesceOrder()[i]])
}

// Encode picks a concrete instruction word (and required mode state)
// satisfying the word condition.  Unconstrained bits default to 0.
func (s *Session) Encode(instrs []*code.Instr) (word uint64, mode ModeReq, err error) {
	cond, err := s.WordCond(instrs)
	if err != nil {
		return 0, nil, err
	}
	e := s.e
	// Walk the satisfying path directly: no assignment map, and the mode
	// map (empty for almost every word) is allocated only when a mode
	// variable actually appears on the path.
	ok := s.ops.AnySatWalk(cond, func(v int, val bool) {
		if bit, isInsn := e.Vars.IsInsnVar(v); isInsn {
			if val {
				word |= 1 << uint(bit)
			}
			return
		}
		if storage, bit := e.Vars.ModeVarOwner(v); storage != "" {
			if mode == nil {
				mode = make(ModeReq)
			}
			if val {
				mode[storage] |= 1 << uint(bit)
			} else {
				mode[storage] |= 0
			}
		}
	})
	if !ok {
		return 0, nil, fmt.Errorf("asm: unsatisfiable word condition")
	}
	s.cWords.Inc()
	return word, mode, nil
}

// Feasible reports whether the instruction set can execute in one word.
func (s *Session) Feasible(instrs []*code.Instr) bool {
	s.cFeas.Inc()
	_, err := s.WordCond(instrs)
	return err == nil
}

// NOP returns an instruction word that changes no suppressible storage.
func (s *Session) NOP() (uint64, error) {
	if s.e.frozen {
		return s.e.nop, s.e.nopErr
	}
	return s.e.nopWord()
}

// nopWord picks a quiescent word from the quiet condition (read-only).
func (e *Encoder) nopWord() (uint64, error) {
	assign, ok := e.m.AnySat(e.quiet)
	if !ok {
		return 0, fmt.Errorf("asm: machine has no quiescent encoding (NOP impossible)")
	}
	var word uint64
	for v, val := range assign {
		if bit, isInsn := e.Vars.IsInsnVar(v); isInsn && val {
			word |= 1 << uint(bit)
		}
	}
	return word, nil
}

// EncodeProgram fills in Bits for every word and verifies that the mode
// requirements of all words are mutually consistent (the program never
// needs two different states of one mode register without an intervening
// mode change, which this straight-line encoder does not insert).
func (s *Session) EncodeProgram(p *code.Program) (ModeReq, error) {
	var required ModeReq // lazily allocated: most programs need no mode state
	for i, w := range p.Words {
		bits, mode, err := s.Encode(w.Instrs)
		if err != nil {
			return nil, fmt.Errorf("asm: word %d: %w", i, err)
		}
		w.Bits = bits
		w.Encoded = true
		for st, v := range mode {
			if prev, ok := required[st]; ok && prev != v {
				return nil, fmt.Errorf("asm: word %d needs mode %s=%d but an earlier word needs %d",
					i, st, v, prev)
			}
			if required == nil {
				required = make(ModeReq)
			}
			required[st] = v
		}
	}
	return required, nil
}

// OverlaySize returns the number of private BDD nodes the session's view
// has accumulated, or 0 for a pre-freeze session operating on the shared
// manager.  Session pools use it to decide whether a returned session is
// still cheap enough to reuse.
func (s *Session) OverlaySize() int {
	if v, ok := s.ops.(*bdd.View); ok {
		return v.OverlaySize()
	}
	return 0
}

// Listing renders an encoded program as an annotated listing.
func (e *Encoder) Listing(p *code.Program) string {
	var b strings.Builder
	width := (e.Vars.InsnWidth() + 3) / 4
	for i, w := range p.Words {
		fmt.Fprintf(&b, "%04d  %0*x  ", i, width, w.Bits)
		parts := make([]string, len(w.Instrs))
		for j, in := range w.Instrs {
			parts[j] = in.Template.String()
		}
		b.WriteString(strings.Join(parts, " || "))
		for _, in := range w.Instrs {
			if in.Comment != "" {
				fmt.Fprintf(&b, "  ; %s", in.Comment)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
