// Package asm encodes instruction words from RT execution conditions.
//
// The execution condition of each selected RT instance constrains the
// instruction-word bits (a BDD from instruction-set extraction); operand
// fields pin further bits.  Encoding a word conjoins everything, adds
// quiescence constraints — every storage not deliberately written this
// cycle must have all of its (suppressible) write conditions false, so a
// data word cannot accidentally trigger a store or a jump — and picks a
// satisfying assignment of the instruction bits.  Conditions over
// mode-register bits become mode-state requirements recorded per word.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/code"
	"repro/internal/ise"
	"repro/internal/rtl"
)

// Encoder encodes instruction words for one extracted machine.
type Encoder struct {
	Vars *ise.VarMap
	Base *rtl.Base

	m *bdd.Manager
	// quiesce maps a storage to the disjunction of the static conditions
	// of its suppressible write templates.
	quiesce map[string]*bdd.Node
	// quiet is the conjunction of all negated quiesce conditions (the NOP
	// condition).
	quiet *bdd.Node
}

// NewEncoder analyses the template base and builds the quiescence
// conditions.  background lists storages that are written every cycle by
// design (the program counter behind a next-PC multiplexer): they are
// exempt from quiescence, and their unconstrained control bits default to
// 0 — models must make the all-zero selection the benign one (PC+1).
func NewEncoder(vars *ise.VarMap, base *rtl.Base, background ...string) *Encoder {
	e := &Encoder{Vars: vars, Base: base, m: vars.M,
		quiesce: make(map[string]*bdd.Node)}
	bg := make(map[string]bool, len(background))
	for _, s := range background {
		bg[s] = true
	}
	for _, t := range base.Templates {
		if t.DestPort || bg[t.Dest] {
			continue // port drives / background storages are not suppressed
		}
		if e.m.Tautology(t.Cond.Static) {
			// Unconditional background behavior (e.g. the PC increment)
			// cannot be suppressed; it is part of the machine semantics.
			continue
		}
		prev, ok := e.quiesce[t.Dest]
		if !ok {
			prev = e.m.False()
		}
		e.quiesce[t.Dest] = e.m.Or(prev, t.Cond.Static)
	}
	e.quiet = e.m.True()
	for _, s := range e.storages() {
		e.quiet = e.m.And(e.quiet, e.m.Not(e.quiesce[s]))
	}
	return e
}

func (e *Encoder) storages() []string {
	out := make([]string, 0, len(e.quiesce))
	for s := range e.quiesce {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ModeReq is a required mode-register state: storage name → bit values.
type ModeReq map[string]int64

// WordCond computes the full encoding condition of a set of parallel RT
// instances: conjunction of their static conditions, their operand-field
// bit cubes, and quiescence of every untouched storage.
func (e *Encoder) WordCond(instrs []*code.Instr) (*bdd.Node, error) {
	cond := e.m.True()
	intended := make(map[string]bool)
	for _, in := range instrs {
		cond = e.m.And(cond, in.Template.Cond.Static)
		if !in.Template.DestPort {
			intended[in.Template.Dest] = true
		}
	}
	if cond == e.m.False() {
		return nil, fmt.Errorf("asm: conflicting execution conditions (instruction encoding conflict)")
	}
	// Operand fields pin instruction bits.
	bits := make(map[int]bool) // var index -> value
	for _, in := range instrs {
		for _, f := range in.Fields {
			w := f.Hi - f.Lo + 1
			for b := 0; b < w; b++ {
				pos := f.Lo + b
				if pos >= e.Vars.InsnWidth() {
					return nil, fmt.Errorf("asm: field %s exceeds instruction width %d", f, e.Vars.InsnWidth())
				}
				v := f.Val&(1<<uint(b)) != 0
				varIdx := e.Vars.InsnVars[pos]
				if prev, ok := bits[varIdx]; ok && prev != v {
					return nil, fmt.Errorf("asm: operand fields conflict at instruction bit %d", pos)
				}
				bits[varIdx] = v
			}
		}
	}
	cond = e.m.And(cond, e.m.Cube(bits))
	if cond == e.m.False() {
		return nil, fmt.Errorf("asm: operand fields contradict execution conditions")
	}
	// Quiescence for untouched storages.
	for _, s := range e.storages() {
		if intended[s] {
			continue
		}
		cond = e.m.And(cond, e.m.Not(e.quiesce[s]))
		if cond == e.m.False() {
			return nil, fmt.Errorf("asm: cannot encode word without disturbing %s", s)
		}
	}
	return cond, nil
}

// Encode picks a concrete instruction word (and required mode state)
// satisfying the word condition.  Unconstrained bits default to 0.
func (e *Encoder) Encode(instrs []*code.Instr) (word uint64, mode ModeReq, err error) {
	cond, err := e.WordCond(instrs)
	if err != nil {
		return 0, nil, err
	}
	assign, ok := e.m.AnySat(cond)
	if !ok {
		return 0, nil, fmt.Errorf("asm: unsatisfiable word condition")
	}
	mode = make(ModeReq)
	for v, val := range assign {
		if bit, isInsn := e.Vars.IsInsnVar(v); isInsn {
			if val {
				word |= 1 << uint(bit)
			}
			continue
		}
		if storage, bit := e.Vars.ModeVarOwner(v); storage != "" {
			if val {
				mode[storage] |= 1 << uint(bit)
			} else {
				mode[storage] |= 0
			}
		}
	}
	if len(mode) == 0 {
		mode = nil
	}
	return word, mode, nil
}

// Feasible reports whether the instruction set can execute in one word.
func (e *Encoder) Feasible(instrs []*code.Instr) bool {
	_, err := e.WordCond(instrs)
	return err == nil
}

// NOP returns an instruction word that changes no suppressible storage.
func (e *Encoder) NOP() (uint64, error) {
	assign, ok := e.m.AnySat(e.quiet)
	if !ok {
		return 0, fmt.Errorf("asm: machine has no quiescent encoding (NOP impossible)")
	}
	var word uint64
	for v, val := range assign {
		if bit, isInsn := e.Vars.IsInsnVar(v); isInsn && val {
			word |= 1 << uint(bit)
		}
	}
	return word, nil
}

// EncodeProgram fills in Bits for every word and verifies that the mode
// requirements of all words are mutually consistent (the program never
// needs two different states of one mode register without an intervening
// mode change, which this straight-line encoder does not insert).
func (e *Encoder) EncodeProgram(p *code.Program) (ModeReq, error) {
	required := make(ModeReq)
	seen := make(map[string]bool)
	for i, w := range p.Words {
		bits, mode, err := e.Encode(w.Instrs)
		if err != nil {
			return nil, fmt.Errorf("asm: word %d: %w", i, err)
		}
		w.Bits = bits
		w.Encoded = true
		for s, v := range mode {
			if seen[s] && required[s] != v {
				return nil, fmt.Errorf("asm: word %d needs mode %s=%d but an earlier word needs %d",
					i, s, v, required[s])
			}
			seen[s] = true
			required[s] = v
		}
	}
	if len(required) == 0 {
		return nil, nil
	}
	return required, nil
}

// Listing renders an encoded program as an annotated listing.
func (e *Encoder) Listing(p *code.Program) string {
	var b strings.Builder
	width := (e.Vars.InsnWidth() + 3) / 4
	for i, w := range p.Words {
		fmt.Fprintf(&b, "%04d  %0*x  ", i, width, w.Bits)
		parts := make([]string, len(w.Instrs))
		for j, in := range w.Instrs {
			parts[j] = in.Template.String()
		}
		b.WriteString(strings.Join(parts, " || "))
		for _, in := range w.Instrs {
			if in.Comment != "" {
				fmt.Fprintf(&b, "  ; %s", in.Comment)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
